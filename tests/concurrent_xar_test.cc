#include "xar/concurrent_xar.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_helpers.h"
#include "workload/trip_generator.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class ConcurrentXarTest : public ::testing::Test {
 protected:
  ConcurrentXarTest()
      : city_(SharedCity()),
        oracle_(city_.graph),
        xar_(city_.graph, *city_.spatial, *city_.region, oracle_) {}

  std::vector<TaxiTrip> Trips(std::size_t n, std::uint64_t seed) {
    WorkloadOptions opt;
    opt.num_trips = n;
    opt.seed = seed;
    return GenerateTrips(city_.graph.bounds(), opt);
  }

  RideRequest ToRequest(const TaxiTrip& t) const {
    RideRequest req;
    req.id = t.id;
    req.source = t.pickup;
    req.destination = t.dropoff;
    req.earliest_departure_s = t.pickup_time_s;
    req.latest_departure_s = t.pickup_time_s + 900;
    return req;
  }

  TestCity& city_;
  GraphOracle oracle_;
  ConcurrentXarSystem xar_;
};

TEST_F(ConcurrentXarTest, SingleThreadedSemanticsMatchPlainSystem) {
  GraphOracle plain_oracle(city_.graph);
  XarSystem plain(city_.graph, *city_.spatial, *city_.region, plain_oracle);
  for (const TaxiTrip& t : Trips(120, 70)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    Result<RideId> a = xar_.CreateRide(offer);
    Result<RideId> b = plain.CreateRide(offer);
    ASSERT_EQ(a.ok(), b.ok());
  }
  for (const TaxiTrip& t : Trips(60, 71)) {
    RideRequest req = ToRequest(t);
    std::vector<RideMatch> a = xar_.Search(req);
    std::vector<RideMatch> b = plain.Search(req);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].ride, b[i].ride);
  }
}

TEST_F(ConcurrentXarTest, GetRideCopiesState) {
  RideOffer offer;
  const BoundingBox& b = city_.graph.bounds();
  offer.source = {b.min_lat + 0.2 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.2 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.8 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.8 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  Result<RideId> ride = xar_.CreateRide(offer);
  ASSERT_TRUE(ride.ok());
  Result<Ride> copy = xar_.GetRide(*ride);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->id, *ride);
  EXPECT_FALSE(xar_.GetRide(RideId(9999)).ok());
}

TEST_F(ConcurrentXarTest, ParallelSearchersWithConcurrentWriters) {
  // Load initial supply.
  std::vector<TaxiTrip> supply = Trips(400, 72);
  for (const TaxiTrip& t : supply) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar_.CreateRide(offer);
  }

  std::atomic<std::size_t> searches{0};
  std::atomic<std::size_t> matches{0};
  std::atomic<std::size_t> bookings{0};

  // Finite work per thread: shared_mutex gives no fairness guarantee, so a
  // run-until-stopped reader loop can starve the writer on a single core.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::vector<TaxiTrip> probes =
          Trips(250, 73 + static_cast<std::uint64_t>(r));
      for (const TaxiTrip& t : probes) {
        std::vector<RideMatch> found = xar_.Search(ToRequest(t));
        searches.fetch_add(1, std::memory_order_relaxed);
        matches.fetch_add(found.size(), std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }

  std::thread writer([&] {
    std::vector<TaxiTrip> stream = Trips(150, 80);
    for (const TaxiTrip& t : stream) {
      Result<BookingRecord> booked = xar_.SearchAndBook(ToRequest(t));
      if (booked.ok()) {
        bookings.fetch_add(1, std::memory_order_relaxed);
      } else {
        RideOffer offer;
        offer.source = t.pickup;
        offer.destination = t.dropoff;
        offer.departure_time_s = t.pickup_time_s;
        (void)xar_.CreateRide(offer);
      }
      std::this_thread::yield();
    }
  });

  writer.join();
  for (std::thread& th : readers) th.join();

  EXPECT_GT(searches.load(), 0u);
  EXPECT_GT(bookings.load(), 0u);
  // The system is intact after concurrent traffic: a fresh search works and
  // every booking kept the invariants.
  std::vector<TaxiTrip> post = Trips(50, 90);
  for (const TaxiTrip& t : post) {
    for (const RideMatch& m : xar_.Search(ToRequest(t))) {
      Result<Ride> ride = xar_.GetRide(m.ride);
      ASSERT_TRUE(ride.ok());
      EXPECT_TRUE(ride->active);
      EXPECT_GE(ride->seats_available, 1);
    }
  }
}

TEST_F(ConcurrentXarTest, SearchAndBookIsAtomic) {
  // One ride with one seat, many threads racing SearchAndBook: exactly one
  // can win for each seat; no double-booking.
  RideOffer offer;
  const BoundingBox& b = city_.graph.bounds();
  offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  offer.seats = 1;
  ASSERT_TRUE(xar_.CreateRide(offer).ok());

  RideRequest base;
  base.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                 b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
  base.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                      b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  base.earliest_departure_s = 8 * 3600;
  base.latest_departure_s = 8 * 3600 + 1800;

  std::atomic<int> wins{0};
  std::vector<std::thread> riders;
  for (int r = 0; r < 6; ++r) {
    riders.emplace_back([&, r] {
      RideRequest req = base;
      req.id = RequestId(static_cast<RequestId::underlying_type>(100 + r));
      if (xar_.SearchAndBook(req).ok()) wins.fetch_add(1);
    });
  }
  for (std::thread& th : riders) th.join();
  EXPECT_EQ(wins.load(), 1);
}

/// Corridor helper shared by the retry-policy tests below: a diagonal offer
/// and a request sitting inside it.
struct Corridor {
  RideOffer offer;
  RideRequest request;
};

Corridor MakeCorridor(const BoundingBox& b, std::uint32_t request_id) {
  Corridor c;
  c.offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                    b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  c.offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                         b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  c.offer.departure_time_s = 8 * 3600;
  c.request.id = RequestId(request_id);
  c.request.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                      b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
  c.request.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                           b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  c.request.earliest_departure_s = 8 * 3600;
  c.request.latest_departure_s = 8 * 3600 + 1800;
  return c;
}

TEST_F(ConcurrentXarTest, RetryCountersTrackOutcomes) {
  Corridor c = MakeCorridor(city_.graph.bounds(), 300);

  // Empty system: the round-0 search is empty on a stable epoch, so
  // SearchAndBook gives up without a retry round.
  EXPECT_FALSE(xar_.SearchAndBook(c.request).ok());
  RetryStats stats = xar_.retry_stats();
  EXPECT_EQ(stats.unmatched, 1u);
  EXPECT_EQ(stats.booked_first_try, 0u);
  EXPECT_EQ(stats.booked_after_research, 0u);
  EXPECT_EQ(stats.stale_rejections, 0u);

  // With supply in place the first optimistic round wins.
  ASSERT_TRUE(xar_.CreateRide(c.offer).ok());
  EXPECT_TRUE(xar_.SearchAndBook(c.request).ok());
  stats = xar_.retry_stats();
  EXPECT_EQ(stats.booked_first_try, 1u);
  EXPECT_EQ(stats.booked_after_research, 0u);
  EXPECT_EQ(stats.stale_rejections, 0u);
  EXPECT_EQ(stats.unmatched, 1u);
}

TEST_F(ConcurrentXarTest, ForcedStaleCandidateIsReSearched) {
  // Ride A has one seat; the victim's round-0 search will find it.
  Corridor c = MakeCorridor(city_.graph.bounds(), 310);
  c.offer.seats = 1;
  Result<RideId> ride_a = xar_.CreateRide(c.offer);
  ASSERT_TRUE(ride_a.ok());

  // The hook fires between the victim's search and its book: a thief takes
  // ride A's only seat (direct Search+Book, not SearchAndBook — the hook
  // must not recurse into itself) and a second identical ride B appears, so
  // the victim's re-search round has somewhere to land.
  std::atomic<bool> fired{false};
  RideOffer offer_b = c.offer;
  xar_.SetPostSearchHookForTest([&](const RideRequest&, std::size_t round) {
    if (round != 0 || fired.exchange(true)) return;
    RideRequest thief = c.request;
    thief.id = RequestId(311);
    std::vector<RideMatch> matches = xar_.Search(thief);
    ASSERT_FALSE(matches.empty());
    ASSERT_TRUE(xar_.Book(matches.front().ride, thief, matches.front()).ok());
    ASSERT_TRUE(xar_.CreateRide(offer_b).ok());
  });

  Result<BookingRecord> booked = xar_.SearchAndBook(c.request);
  ASSERT_TRUE(booked.ok());
  EXPECT_NE(booked->ride, *ride_a);

  RetryStats stats = xar_.retry_stats();
  EXPECT_EQ(stats.booked_first_try, 0u);
  EXPECT_EQ(stats.booked_after_research, 1u);
  EXPECT_GE(stats.stale_rejections, 1u);
  EXPECT_EQ(stats.unmatched, 0u);
}

TEST_F(ConcurrentXarTest, EpochBumpMidSearchTriggersReSearch) {
  // Round 0 searches an empty system — but the hook then creates supply and
  // refreshes, moving the epoch mid-flight. The empty-result-on-stable-epoch
  // early exit must NOT fire, and the re-search round books.
  Corridor c = MakeCorridor(city_.graph.bounds(), 320);
  std::atomic<bool> fired{false};
  xar_.SetPostSearchHookForTest([&](const RideRequest&, std::size_t round) {
    if (round != 0 || fired.exchange(true)) return;
    ASSERT_TRUE(xar_.CreateRide(c.offer).ok());
    (void)xar_.RefreshDiscretization();
  });

  Result<BookingRecord> booked = xar_.SearchAndBook(c.request);
  ASSERT_TRUE(booked.ok());
  EXPECT_EQ(xar_.epoch(), 1u);

  RetryStats stats = xar_.retry_stats();
  EXPECT_EQ(stats.booked_first_try, 0u);
  EXPECT_EQ(stats.booked_after_research, 1u);
  EXPECT_EQ(stats.stale_rejections, 0u);
  EXPECT_EQ(stats.unmatched, 0u);
}

}  // namespace
}  // namespace xar
