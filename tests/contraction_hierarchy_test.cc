#include "graph/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "common/rng.h"
#include "graph/dijkstra.h"
#include "graph/generator.h"

namespace xar {
namespace {

/// CH must be exact for any node order / witness limit — verified against
/// Dijkstra across seeds and metrics.
class ChCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Metric>> {};

TEST_P(ChCorrectnessTest, MatchesDijkstra) {
  auto [seed, metric] = GetParam();
  CityOptions opt;
  opt.rows = 9;
  opt.cols = 9;
  opt.seed = seed;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g, metric);
  DijkstraEngine dijkstra(g);
  Rng rng(seed + 1);
  for (int i = 0; i < 60; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    EXPECT_NEAR(ch.Distance(a, b), dijkstra.Distance(a, b, metric), 1e-6)
        << a.value() << "->" << b.value();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMetrics, ChCorrectnessTest,
    ::testing::Combine(::testing::Values(51, 52, 53),
                       ::testing::Values(Metric::kDriveDistance,
                                         Metric::kDriveTime)));

TEST(ContractionHierarchyTest, TightWitnessLimitStaysExact) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 54;
  RoadGraph g = GenerateCity(opt);
  ChOptions cheap;
  cheap.witness_search_limit = 2;  // nearly no witness search: many shortcuts
  ContractionHierarchy lazy(g, Metric::kDriveDistance, cheap);
  ContractionHierarchy thorough(g, Metric::kDriveDistance, {});
  EXPECT_GE(lazy.NumShortcuts(), thorough.NumShortcuts());
  DijkstraEngine dijkstra(g);
  Rng rng(55);
  for (int i = 0; i < 40; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    double expect = dijkstra.Distance(a, b, Metric::kDriveDistance);
    EXPECT_NEAR(lazy.Distance(a, b), expect, 1e-6);
    EXPECT_NEAR(thorough.Distance(a, b), expect, 1e-6);
  }
}

TEST(ContractionHierarchyTest, SettlesFewerNodesThanDijkstra) {
  CityOptions opt;
  opt.rows = 18;
  opt.cols = 18;
  opt.seed = 56;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g);
  DijkstraEngine dijkstra(g);
  Rng rng(57);
  std::size_t ch_settled = 0, dijkstra_settled = 0;
  for (int i = 0; i < 50; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    ch.Distance(a, b);
    dijkstra.Distance(a, b, Metric::kDriveDistance);
    ch_settled += ch.last_settled_count();
    dijkstra_settled += dijkstra.last_settled_count();
  }
  EXPECT_LT(ch_settled, dijkstra_settled);
}

TEST(ContractionHierarchyTest, RanksAreAPermutation) {
  CityOptions opt;
  opt.rows = 7;
  opt.cols = 7;
  opt.seed = 58;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g);
  std::vector<bool> seen(g.NumNodes(), false);
  for (std::size_t v = 0; v < g.NumNodes(); ++v) {
    std::size_t r =
        ch.RankOf(NodeId(static_cast<NodeId::underlying_type>(v)));
    ASSERT_LT(r, g.NumNodes());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

/// Unpacked routes must be real original-graph chains (every hop an actual
/// edge under the metric) whose length equals the shortcut-level distance.
TEST_P(ChCorrectnessTest, UnpackedRoutesMatchDistances) {
  auto [seed, metric] = GetParam();
  CityOptions opt;
  opt.rows = 9;
  opt.cols = 9;
  opt.seed = seed;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g, metric);
  Rng rng(seed + 3);
  int found = 0;
  for (int i = 0; i < 40; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    const double dist = ch.Distance(a, b);
    Path path = ch.Route(a, b);
    if (std::isinf(dist)) {
      EXPECT_FALSE(path.Found());
      continue;
    }
    ++found;
    ASSERT_TRUE(path.Found());
    ASSERT_EQ(path.nodes.front(), a);
    ASSERT_EQ(path.nodes.back(), b);
    double sum = 0.0;
    for (std::size_t h = 0; h + 1 < path.nodes.size(); ++h) {
      double hop = std::numeric_limits<double>::infinity();
      for (const RoadEdge& e : g.OutEdges(path.nodes[h])) {
        if (e.to == path.nodes[h + 1]) {
          hop = std::min(hop, RoadGraph::EdgeWeight(e, metric));
        }
      }
      ASSERT_TRUE(std::isfinite(hop)) << "hop " << h << " is not an edge";
      sum += hop;
    }
    EXPECT_NEAR(sum, dist, 1e-6 * std::max(1.0, dist));
  }
  EXPECT_GT(found, 0);
}

TEST(ContractionHierarchyTest, RouteBetweenSameNodeIsZeroLengthSingleton) {
  CityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = 60;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g);
  Path path = ch.Route(NodeId(7), NodeId(7));
  ASSERT_EQ(path.nodes.size(), 1u);
  EXPECT_EQ(path.nodes.front(), NodeId(7));
  EXPECT_DOUBLE_EQ(path.length_m, 0.0);
  EXPECT_DOUBLE_EQ(path.time_s, 0.0);
}

/// Per-thread ChQuery workspaces over one shared immutable hierarchy must
/// return the same answers as the hierarchy's own convenience query.
TEST(ContractionHierarchyTest, SeparateQueryWorkspacesAgree) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 61;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g);
  ChQuery q1(ch), q2(ch);
  Rng rng(62);
  for (int i = 0; i < 30; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    const double expect = ch.Distance(a, b);
    EXPECT_DOUBLE_EQ(q1.Distance(a, b), expect);
    EXPECT_DOUBLE_EQ(q2.Distance(a, b), expect);
    EXPECT_EQ(q1.Route(a, b).nodes, ch.Route(a, b).nodes);
  }
}

TEST(ContractionHierarchyTest, TrivialQueries) {
  CityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = 59;
  RoadGraph g = GenerateCity(opt);
  ContractionHierarchy ch(g);
  EXPECT_DOUBLE_EQ(ch.Distance(NodeId(5), NodeId(5)), 0.0);
  EXPECT_GT(ch.MemoryFootprint(), 0u);
}

}  // namespace
}  // namespace xar
