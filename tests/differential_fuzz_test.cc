// Randomized differential fuzz harness (ISSUE 5): seed-parameterized
// TripGenerator workloads replayed through every (system, cache-policy)
// combination — XarSystem vs ConcurrentXarSystem, kClock vs kStripedLru.
// The configurations must be observationally identical: same ride ids, same
// match lists, same booking outcomes, bit-identical detours — and every
// booking must respect the paper's 4-epsilon detour guarantee.
//
// The tier-1 binary runs a small fixed seed set; the stress binary
// (compiled with XAR_FUZZ_WIDE, ctest label `stress`, TSan job) sweeps a
// wide seed range and adds heavier workloads. Every assertion carries the
// reproducing seed so a failure is a one-line repro:
//   ./differential_fuzz_test --gtest_filter='*/<seed-index>'.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/oracle.h"
#include "graph/oracle_cache.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

#ifdef XAR_FUZZ_WIDE
constexpr std::uint64_t kSeedBegin = 1;
constexpr std::uint64_t kSeedEnd = 17;  // exclusive
constexpr std::size_t kTripsPerSeed = 600;
#else
constexpr std::uint64_t kSeedBegin = 1;
constexpr std::uint64_t kSeedEnd = 4;  // exclusive
constexpr std::size_t kTripsPerSeed = 260;
#endif

std::vector<std::uint64_t> FuzzSeeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = kSeedBegin; s < kSeedEnd; ++s) seeds.push_back(s);
  return seeds;
}

/// Deterministic shard count: hardware_concurrency would make the replay
/// machine-dependent (ride ids are dense across shards for any fixed count,
/// but the count must not float).
constexpr std::size_t kShards = 4;

struct Workload {
  std::vector<RideOffer> offers;
  std::vector<RideRequest> requests;
};

Workload MakeWorkload(std::uint64_t seed) {
  WorkloadOptions wopt;
  wopt.num_trips = kTripsPerSeed;
  wopt.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
  Workload w;
  for (const TaxiTrip& t : GenerateTrips(testing::SharedCity().graph.bounds(),
                                         wopt)) {
    if (t.id.value() % 3 == 0) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      w.offers.push_back(offer);
    } else {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 1200;
      w.requests.push_back(req);
    }
  }
  return w;
}

/// One system-under-test: its own oracle (policy under test) over the shared
/// city, wrapped in either a plain XarSystem or a sharded concurrent one.
/// Both are driven through the same serial Search/Book interface here; the
/// threaded phase exercises ConcurrentXarSystem::SearchAndBook separately.
class Config {
 public:
  Config(OracleCachePolicy policy, bool concurrent)
      : oracle_(testing::SharedCity().graph, /*cache_capacity=*/1 << 10,
                RoutingBackendKind::kAStar, {}, policy) {
    testing::TestCity& city = testing::SharedCity();
    if (concurrent) {
      concurrent_ = std::make_unique<ConcurrentXarSystem>(
          city.graph, *city.spatial, *city.region, oracle_, XarOptions{},
          kShards);
    } else {
      plain_ = std::make_unique<XarSystem>(city.graph, *city.spatial,
                                           *city.region, oracle_);
    }
  }

  Result<RideId> CreateRide(const RideOffer& offer) {
    return plain_ ? plain_->CreateRide(offer) : concurrent_->CreateRide(offer);
  }
  std::vector<RideMatch> Search(const RideRequest& req) const {
    return plain_ ? plain_->Search(req) : concurrent_->Search(req);
  }
  Result<BookingRecord> Book(RideId ride, const RideRequest& req,
                             const RideMatch& match) {
    return plain_ ? plain_->Book(ride, req, match)
                  : concurrent_->Book(ride, req, match);
  }

 private:
  GraphOracle oracle_;
  std::unique_ptr<XarSystem> plain_;
  std::unique_ptr<ConcurrentXarSystem> concurrent_;
};

class DifferentialFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzzTest, AllConfigurationsAgree) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "reproducing seed = " << seed);
  Workload w = MakeWorkload(seed);
  ASSERT_FALSE(w.offers.empty());
  ASSERT_FALSE(w.requests.empty());

  // Reference config first; every other config must match it exactly.
  std::vector<std::unique_ptr<Config>> configs;
  configs.push_back(
      std::make_unique<Config>(OracleCachePolicy::kClock, /*concurrent=*/false));
  configs.push_back(std::make_unique<Config>(OracleCachePolicy::kStripedLru,
                                             /*concurrent=*/false));
  configs.push_back(
      std::make_unique<Config>(OracleCachePolicy::kClock, /*concurrent=*/true));
  configs.push_back(std::make_unique<Config>(OracleCachePolicy::kStripedLru,
                                             /*concurrent=*/true));

  for (const RideOffer& offer : w.offers) {
    Result<RideId> ref = configs[0]->CreateRide(offer);
    for (std::size_t c = 1; c < configs.size(); ++c) {
      Result<RideId> got = configs[c]->CreateRide(offer);
      ASSERT_EQ(ref.ok(), got.ok()) << "config " << c;
      if (ref.ok()) {
        // Sharded ride-id assignment (offset + stride round-robin) must
        // produce the same dense ids as the standalone system.
        ASSERT_EQ(ref.value(), got.value()) << "config " << c;
      }
    }
  }

  const testing::TestCity& city = testing::SharedCity();
  const double slack = 4 * city.region->epsilon() +
                       2 * city.region->options().max_drive_to_landmark_m;
  std::size_t bookings = 0;
  std::size_t matched_requests = 0;
  for (const RideRequest& req : w.requests) {
    SCOPED_TRACE(::testing::Message() << "request " << req.id.value());
    std::vector<RideMatch> ref = configs[0]->Search(req);
    for (std::size_t c = 1; c < configs.size(); ++c) {
      std::vector<RideMatch> got = configs[c]->Search(req);
      ASSERT_EQ(ref.size(), got.size()) << "config " << c;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i].ride, got[i].ride) << "config " << c << " rank " << i;
        ASSERT_EQ(ref[i].detour_estimate_m, got[i].detour_estimate_m)
            << "config " << c << " rank " << i;
        ASSERT_EQ(ref[i].TotalWalkM(), got[i].TotalWalkM())
            << "config " << c << " rank " << i;
      }
    }
    if (ref.empty()) continue;
    ++matched_requests;

    Result<BookingRecord> ref_booking =
        configs[0]->Book(ref.front().ride, req, ref.front());
    for (std::size_t c = 1; c < configs.size(); ++c) {
      std::vector<RideMatch> got = configs[c]->Search(req);
      ASSERT_FALSE(got.empty());
      Result<BookingRecord> booking =
          configs[c]->Book(got.front().ride, req, got.front());
      ASSERT_EQ(ref_booking.ok(), booking.ok()) << "config " << c;
      if (!ref_booking.ok()) continue;
      ASSERT_EQ(ref_booking->actual_detour_m, booking->actual_detour_m)
          << "config " << c;
      ASSERT_EQ(ref_booking->estimated_detour_m, booking->estimated_detour_m)
          << "config " << c;
      ASSERT_EQ(ref_booking->walk_m, booking->walk_m) << "config " << c;
      ASSERT_EQ(ref_booking->pickup_eta_s, booking->pickup_eta_s)
          << "config " << c;
    }
    if (ref_booking.ok()) {
      ++bookings;
      // Theorem 6 detour guarantee, same slack as search_property_test.
      EXPECT_LE(ref_booking->actual_detour_m,
                ref_booking->estimated_detour_m + slack + 1e-6);
    }
  }
  EXPECT_GT(matched_requests, 0u) << "workload produced no matches";
  EXPECT_GT(bookings, 0u) << "workload produced no bookings";
}

// Threaded phase: the same workload pushed through the optimistic
// SearchAndBook path from many threads, under both cache policies. Exact
// equality is meaningless under concurrent interleaving, so this phase
// checks invariants instead: every success respects the detour bound, the
// books+unmatched+failed accounting covers every request, and (under TSan)
// the CLOCK cache's lock-free path is race-free.
TEST_P(DifferentialFuzzTest, ThreadedSearchAndBookInvariants) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "reproducing seed = " << seed);
  Workload w = MakeWorkload(seed);
  testing::TestCity& city = testing::SharedCity();
  const double slack = 4 * city.region->epsilon() +
                       2 * city.region->options().max_drive_to_landmark_m;

  for (OracleCachePolicy policy :
       {OracleCachePolicy::kClock, OracleCachePolicy::kStripedLru}) {
    SCOPED_TRACE(OracleCachePolicyName(policy));
    GraphOracle oracle(city.graph, /*cache_capacity=*/1 << 10,
                       RoutingBackendKind::kAStar, {}, policy);
    ConcurrentXarSystem sys(city.graph, *city.spatial, *city.region, oracle,
                            XarOptions{}, kShards);
    for (const RideOffer& offer : w.offers) {
      ASSERT_TRUE(sys.CreateRide(offer).ok());
    }

    constexpr std::size_t kThreads = 4;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> booked{0};
    std::atomic<std::size_t> bound_violations{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= w.requests.size()) return;
          Result<BookingRecord> booking = sys.SearchAndBook(w.requests[i]);
          if (!booking.ok()) continue;
          booked.fetch_add(1, std::memory_order_relaxed);
          if (booking->actual_detour_m >
              booking->estimated_detour_m + slack + 1e-6) {
            bound_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    EXPECT_EQ(bound_violations.load(), 0u);
    EXPECT_GT(booked.load(), 0u);
    RetryStats stats = sys.retry_stats();
    // Every request is accounted for exactly once: booked in some round, or
    // unmatched after the final one.
    const std::size_t total_booked =
        stats.booked_first_try + stats.booked_after_research;
    EXPECT_EQ(total_booked + stats.unmatched, w.requests.size());
    EXPECT_EQ(total_booked, booked.load());
    // Cache-counter sanity: every eviction replaced an earlier successful
    // insertion, and the lossy path may drop but never fabricate entries.
    OracleCacheCounters cc = oracle.cache_counters();
    EXPECT_LE(cc.evictions, cc.insertions);
    EXPECT_LE(cc.insertions, oracle.computation_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
#ifdef XAR_FUZZ_WIDE
    WideSeeds,
#else
    Tier1Seeds,
#endif
    DifferentialFuzzTest, ::testing::ValuesIn(FuzzSeeds()),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
      return "Seed" + std::to_string(info.param);
    });

}  // namespace
}  // namespace xar
