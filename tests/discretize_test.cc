#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "discretize/distance_matrix.h"
#include "discretize/exact_cluster.h"
#include "discretize/greedy_search.h"
#include "discretize/kcenter.h"
#include "discretize/landmark_extractor.h"
#include "discretize/region_index.h"
#include "graph/dijkstra.h"
#include "graph/generator.h"
#include "tests/test_helpers.h"

namespace xar {
namespace {

/// A random metric from points in the plane (euclidean => proper metric).
DistanceMatrix RandomPointMetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LatLng> points;
  LatLng origin{40.70, -74.00};
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(OffsetMeters(origin, rng.Uniform(0, 8000),
                                  rng.Uniform(0, 8000)));
  }
  return DistanceMatrix::FromPoints(points);
}

// --- DistanceMatrix -----------------------------------------------------------

TEST(DistanceMatrixTest, FromPointsSymmetricZeroDiagonal) {
  DistanceMatrix m = RandomPointMetric(20, 1);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.At(i, i), 0.0);
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_DOUBLE_EQ(m.At(i, j), m.At(j, i));
    }
  }
}

TEST(DistanceMatrixTest, FromPointsSatisfiesTriangleInequality) {
  DistanceMatrix m = RandomPointMetric(15, 2);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      for (std::size_t k = 0; k < m.size(); ++k) {
        EXPECT_LE(m.At(i, j), m.At(i, k) + m.At(k, j) + 1e-6);
      }
    }
  }
}

TEST(DistanceMatrixTest, FromGraphSymmetrizedAndDominatesDirected) {
  CityOptions opt;
  opt.rows = 7;
  opt.cols = 7;
  opt.seed = 3;
  RoadGraph g = GenerateCity(opt);
  SpatialNodeIndex spatial(g);
  LandmarkExtractionOptions lopt;
  lopt.num_candidates = 60;
  std::vector<Landmark> landmarks = ExtractLandmarks(g, spatial, lopt);
  ASSERT_GE(landmarks.size(), 5u);
  DistanceMatrix m = DistanceMatrix::FromGraph(g, landmarks);
  DijkstraEngine engine(g);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_DOUBLE_EQ(m.At(i, j), m.At(j, i));
      // Symmetrization takes the max of the two directed distances.
      double dij = engine.Distance(landmarks[i].node, landmarks[j].node,
                                   Metric::kDriveDistance);
      EXPECT_GE(m.At(i, j) + 1e-9, dij);
    }
  }
}

TEST(DistanceMatrixTest, FromValuesAndMaxValue) {
  DistanceMatrix m = DistanceMatrix::FromValues(2, {0, 5, 5, 0});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxValue(), 5.0);
  EXPECT_GT(m.MemoryFootprint(), 0u);
}

// --- Gonzalez GREEDY ------------------------------------------------------------

TEST(KCenterTest, SingleCenterCoversAll) {
  DistanceMatrix m = RandomPointMetric(30, 4);
  KCenterResult r = GreedyKCenter(m, 1);
  EXPECT_EQ(r.centers.size(), 1u);
  double max_d = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    max_d = std::max(max_d, m.At(r.centers[0], i));
  }
  EXPECT_DOUBLE_EQ(r.radius, max_d);
}

TEST(KCenterTest, AssignmentIsNearestCenter) {
  DistanceMatrix m = RandomPointMetric(40, 5);
  KCenterResult r = GreedyKCenter(m, 6);
  for (std::size_t i = 0; i < m.size(); ++i) {
    double assigned = m.At(i, r.centers[r.assignment[i]]);
    for (std::size_t c = 0; c < r.centers.size(); ++c) {
      EXPECT_LE(assigned, m.At(i, r.centers[c]) + 1e-9);
    }
    EXPECT_LE(assigned, r.radius + 1e-9);
  }
}

TEST(KCenterTest, KEqualsNGivesZeroRadius) {
  DistanceMatrix m = RandomPointMetric(12, 6);
  EXPECT_DOUBLE_EQ(GreedyKCenter(m, 12).radius, 0.0);
}

/// Gonzalez 1985: greedy radius <= 2x the optimal radius. Verified against
/// exhaustive optimum on small instances, across seeds and k.
class GreedyTwoApproxTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(GreedyTwoApproxTest, WithinTwiceOptimal) {
  auto [seed, k] = GetParam();
  DistanceMatrix m = RandomPointMetric(11, seed);
  double greedy = GreedyKCenter(m, k).radius;
  double optimal = ExactKCenterRadius(m, k);
  EXPECT_LE(greedy, 2.0 * optimal + 1e-9);
  EXPECT_GE(greedy + 1e-9, optimal);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, GreedyTwoApproxTest,
    ::testing::Combine(::testing::Values(10, 11, 12, 13, 14, 15),
                       ::testing::Values(2, 3, 4)));

TEST(KCenterTest, SweepMatchesIndividualRuns) {
  DistanceMatrix m = RandomPointMetric(25, 7);
  std::vector<double> sweep = GreedyRadiusSweep(m);
  ASSERT_EQ(sweep.size(), m.size());
  for (std::size_t k = 1; k <= m.size(); k += 4) {
    EXPECT_DOUBLE_EQ(sweep[k - 1], GreedyKCenter(m, k).radius);
  }
  // Radius is non-increasing in k (monotonicity the binary search relies on).
  for (std::size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_LE(sweep[k], sweep[k - 1] + 1e-12);
  }
}

// --- GREEDYSEARCH bicriteria (Theorem 6) --------------------------------------

/// k_alg <= k_opt(delta) and realized diameter <= 4*delta, verified against
/// the exact CLUSTERMINIMIZATION optimum on small instances.
class BicriteriaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BicriteriaTest, TheoremSixHolds) {
  DistanceMatrix m = RandomPointMetric(12, GetParam());
  // Pick delta so the instance is non-trivial (several clusters needed).
  double delta = m.MaxValue() / 4.0;
  GreedySearchResult result = GreedySearchClustering(m, delta);
  std::size_t k_opt = ExactClusterMinimization(m, delta);

  EXPECT_LE(result.k_alg, k_opt) << "bicriteria cluster count violated";
  double diameter = MeasureDiameter(m, result.clustering);
  EXPECT_LE(diameter, 4.0 * delta + 1e-9) << "4*delta diameter violated";

  // Structural sanity: every landmark in exactly one cluster.
  std::vector<int> seen(m.size(), 0);
  for (const auto& members : result.clustering.clusters) {
    EXPECT_FALSE(members.empty());
    for (LandmarkId lm : members) ++seen[lm.value()];
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(seen[i], 1);
    ClusterId c = result.clustering.cluster_of[i];
    const auto& members = result.clustering.clusters[c.value()];
    EXPECT_NE(std::find(members.begin(), members.end(),
                        LandmarkId(static_cast<LandmarkId::underlying_type>(i))),
              members.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BicriteriaTest,
                         ::testing::Values(20, 21, 22, 23, 24, 25, 26, 27));

TEST(GreedySearchTest, ProbeCountLogarithmic) {
  DistanceMatrix m = RandomPointMetric(64, 30);
  GreedySearchResult r = GreedySearchClustering(m, m.MaxValue() / 6);
  EXPECT_LE(r.probes.size(),
            static_cast<std::size_t>(std::ceil(std::log2(64))) + 1);
  EXPECT_GE(r.probes.size(), 1u);
}

TEST(GreedySearchTest, HugeDeltaGivesOneCluster) {
  DistanceMatrix m = RandomPointMetric(20, 31);
  GreedySearchResult r = GreedySearchClustering(m, m.MaxValue() * 2);
  EXPECT_EQ(r.k_alg, 1u);
  EXPECT_EQ(r.clustering.NumClusters(), 1u);
}

TEST(GreedySearchTest, TinyDeltaGivesManyClusters) {
  DistanceMatrix m = RandomPointMetric(20, 32);
  GreedySearchResult r = GreedySearchClustering(m, 1.0);  // 1 meter
  EXPECT_EQ(r.k_alg, 20u);
}

// --- Exact CLUSTERMINIMIZATION ---------------------------------------------------

TEST(ExactClusterTest, KnownInstances) {
  // Three points on a line at 0, 10, 20 (as a 1-D metric).
  DistanceMatrix line =
      DistanceMatrix::FromValues(3, {0, 10, 20, 10, 0, 10, 20, 10, 0});
  EXPECT_EQ(ExactClusterMinimization(line, 25), 1u);
  EXPECT_EQ(ExactClusterMinimization(line, 10), 2u);
  EXPECT_EQ(ExactClusterMinimization(line, 5), 3u);
}

TEST(ExactClusterTest, EmptyAndSingleton) {
  EXPECT_EQ(ExactClusterMinimization(DistanceMatrix::FromValues(0, {}), 1.0),
            0u);
  EXPECT_EQ(ExactClusterMinimization(DistanceMatrix::FromValues(1, {0}), 1.0),
            1u);
}

// --- Landmark extraction -----------------------------------------------------------

TEST(LandmarkExtractorTest, MinSeparationRespected) {
  testing::TestCity& city = testing::SharedCity();
  LandmarkExtractionOptions opt;
  opt.num_candidates = 300;
  opt.min_separation_f_m = 300.0;
  std::vector<Landmark> landmarks =
      ExtractLandmarks(city.graph, *city.spatial, opt);
  ASSERT_GE(landmarks.size(), 3u);
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    EXPECT_EQ(landmarks[i].id.value(), i);
    for (std::size_t j = i + 1; j < landmarks.size(); ++j) {
      EXPECT_GE(EquirectangularMeters(landmarks[i].position,
                                      landmarks[j].position),
                opt.min_separation_f_m - 1.0);
    }
  }
}

TEST(LandmarkExtractorTest, SnappedToNearestNode) {
  testing::TestCity& city = testing::SharedCity();
  LandmarkExtractionOptions opt;
  opt.num_candidates = 100;
  for (const Landmark& lm : ExtractLandmarks(city.graph, *city.spatial, opt)) {
    EXPECT_EQ(lm.node, city.spatial->NearestNode(lm.position));
  }
}

// --- RegionIndex invariants -----------------------------------------------------------

class RegionIndexTest : public ::testing::Test {
 protected:
  const RegionIndex& region() { return *testing::SharedCity().region; }
  const RoadGraph& graph() { return testing::SharedCity().graph; }
};

TEST_F(RegionIndexTest, GridLandmarkWithinDelta) {
  const RegionIndex& r = region();
  double Delta = r.options().max_drive_to_landmark_m;
  std::size_t assigned = 0;
  for (std::size_t g = 0; g < r.grid().CellCount(); ++g) {
    GridId grid(static_cast<GridId::underlying_type>(g));
    if (!r.LandmarkOfGrid(grid).valid()) continue;
    ++assigned;
    EXPECT_LE(r.DriveToLandmarkOfGrid(grid), Delta + 1e-9);
  }
  EXPECT_GT(assigned, r.grid().CellCount() / 4);
}

TEST_F(RegionIndexTest, WalkableListsSortedAndBounded) {
  const RegionIndex& r = region();
  double W = r.options().max_walk_m;
  for (std::size_t g = 0; g < r.grid().CellCount(); ++g) {
    GridId grid(static_cast<GridId::underlying_type>(g));
    double prev = 0;
    for (const WalkableCluster& wc : r.WalkableClustersOf(grid)) {
      EXPECT_LE(wc.walk_m, W + 1e-9);
      EXPECT_GE(wc.walk_m, prev - 1e-9);
      prev = wc.walk_m;
      ASSERT_TRUE(wc.cluster.valid());
      ASSERT_TRUE(wc.nearest_landmark.valid());
      // The recorded landmark really is in the recorded cluster.
      EXPECT_EQ(r.ClusterOfLandmark(wc.nearest_landmark), wc.cluster);
    }
  }
}

TEST_F(RegionIndexTest, ClusterDistancesConsistent) {
  const RegionIndex& r = region();
  std::size_t m = r.NumClusters();
  for (std::size_t a = 0; a < m; ++a) {
    ClusterId ca(static_cast<ClusterId::underlying_type>(a));
    EXPECT_DOUBLE_EQ(r.ClusterDistance(ca, ca), 0.0);
    for (std::size_t b = a + 1; b < m; ++b) {
      ClusterId cb(static_cast<ClusterId::underlying_type>(b));
      EXPECT_DOUBLE_EQ(r.ClusterDistance(ca, cb), r.ClusterDistance(cb, ca));
      // Cluster distance == min landmark-pair distance.
      double min_pair = std::numeric_limits<double>::infinity();
      for (LandmarkId la : r.LandmarksInCluster(ca)) {
        for (LandmarkId lb : r.LandmarksInCluster(cb)) {
          min_pair = std::min(
              min_pair, r.landmark_metric().At(la.value(), lb.value()));
        }
      }
      EXPECT_DOUBLE_EQ(r.ClusterDistance(ca, cb), min_pair);
    }
  }
}

TEST_F(RegionIndexTest, IntraClusterDiameterWithinEpsilon) {
  const RegionIndex& r = region();
  for (std::size_t c = 0; c < r.NumClusters(); ++c) {
    const auto& members =
        r.LandmarksInCluster(ClusterId(static_cast<ClusterId::underlying_type>(c)));
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_LE(
            r.landmark_metric().At(members[i].value(), members[j].value()),
            r.epsilon() + 1e-9);
      }
    }
  }
}

TEST_F(RegionIndexTest, PointResolutionChainConsistent) {
  const RegionIndex& r = region();
  Rng rng(40);
  const BoundingBox& b = graph().bounds();
  for (int i = 0; i < 200; ++i) {
    LatLng p{rng.Uniform(b.min_lat, b.max_lat),
             rng.Uniform(b.min_lng, b.max_lng)};
    GridId g = r.GridOfPoint(p);
    LandmarkId lm = r.LandmarkOfGrid(g);
    ClusterId c = r.ClusterOfGrid(g);
    if (lm.valid()) {
      EXPECT_EQ(c, r.ClusterOfLandmark(lm));
      EXPECT_EQ(r.ClusterOfPoint(p), c);
    } else {
      EXPECT_FALSE(c.valid());
    }
  }
}

TEST_F(RegionIndexTest, NominalSpeedPlausible) {
  EXPECT_GT(region().nominal_speed_mps(), 4.0);
  EXPECT_LT(region().nominal_speed_mps(), 25.0);
}

TEST_F(RegionIndexTest, MemoryFootprintCountsTables) {
  EXPECT_GT(region().MemoryFootprint(),
            region().landmark_metric().MemoryFootprint());
}

}  // namespace
}  // namespace xar
