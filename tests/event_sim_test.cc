// Event-driven city simulator (sim/event_sim.h): live RefreshDiscretization
// epoch swaps mid-simulation, cancellation / no-show scenarios, fixed-seed
// bit-determinism, serial-vs-concurrent agreement, and the ScenarioConfig
// replay differential (`ctest -L sim`).

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_sim.h"
#include "sim/simulator.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::MakeTestCity;
using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> RushHourTrips(const TestCity& city, std::size_t total) {
  WorkloadOptions options;
  options.num_trips = total;
  options.seed = 11;
  std::vector<TaxiTrip> all = GenerateTrips(city.graph.bounds(), options);
  // One morning-rush hour keeps the event horizon (and thus CH rebuild
  // count) small while still spanning several refresh periods.
  return FilterByTimeWindow(all, 8 * 3600.0, 9 * 3600.0);
}

ScenarioConfig TrafficScenario() {
  ScenarioConfig config;
  config.protocol.window_s = 900.0;
  config.traffic.tick_period_s = 300.0;
  config.traffic.load_alpha = 0.05;
  config.events.cancel_probability = 0.15;
  config.events.no_show_probability = 0.15;
  config.refresh_period_s = 900.0;
  config.seed = 5;
  return config;
}

TEST(EventSimTest, LiveRefreshesMidSimulationWithBookingsAround) {
  TestCity& city = SharedCity();
  XarSystem xar(city.graph, *city.spatial, *city.region, *city.oracle);
  std::vector<TaxiTrip> trips = RushHourTrips(city, 1500);
  ASSERT_GT(trips.size(), 50u);

  EventSim sim(city.graph, xar.options(), TrafficScenario());
  EventSimResult result = RunEventSim(xar, sim, trips);

  EXPECT_EQ(result.requests, trips.size());
  EXPECT_GT(result.matched, 0u);
  EXPECT_GT(result.rides_created, 0u);
  EXPECT_GT(result.edge_traversals, 0u);
  EXPECT_GT(result.traffic_ticks, 0u);

  // >= 2 live epoch swaps mid-simulation, with bookings before and after.
  EXPECT_GE(result.refreshes, 2u);
  EXPECT_GE(result.final_epoch, 2u);
  EXPECT_GT(result.bookings_before_first_refresh, 0u);
  EXPECT_GT(result.bookings_after_last_refresh, 0u);

  // Vehicles completed their routes in the (congested) world, so the
  // staleness signal has samples, and congestion makes it nonzero.
  EXPECT_GT(result.eta_samples, 0u);
  EXPECT_GT(result.mean_eta_error_s, 0.0);

  // The event mix drove live cancellations and no-shows.
  EXPECT_GT(result.cancels_attempted, 0u);
  EXPECT_GT(result.cancels_succeeded, 0u);
  EXPECT_GT(result.no_shows_attempted, 0u);
  EXPECT_GT(result.no_shows_succeeded, 0u);
}

TEST(EventSimTest, FixedSeedIsBitDeterministic) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = RushHourTrips(city, 1000);

  EventSimResult runs[2];
  for (int i = 0; i < 2; ++i) {
    XarSystem xar(city.graph, *city.spatial, *city.region, *city.oracle);
    EventSim sim(city.graph, xar.options(), TrafficScenario());
    runs[i] = RunEventSim(xar, sim, trips);
  }

  EXPECT_EQ(runs[0].fingerprint, runs[1].fingerprint);
  EXPECT_EQ(runs[0].requests, runs[1].requests);
  EXPECT_EQ(runs[0].matched, runs[1].matched);
  EXPECT_EQ(runs[0].rides_created, runs[1].rides_created);
  EXPECT_EQ(runs[0].edge_traversals, runs[1].edge_traversals);
  EXPECT_EQ(runs[0].refreshes, runs[1].refreshes);
  EXPECT_EQ(runs[0].cancels_succeeded, runs[1].cancels_succeeded);
  EXPECT_EQ(runs[0].no_shows_succeeded, runs[1].no_shows_succeeded);
  EXPECT_EQ(runs[0].bookings.size(), runs[1].bookings.size());
  EXPECT_EQ(runs[0].mean_eta_error_s, runs[1].mean_eta_error_s);
}

TEST(EventSimTest, SerialAndConcurrentSystemsAgreeOnCounts) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = RushHourTrips(city, 800);

  XarSystem serial(city.graph, *city.spatial, *city.region, *city.oracle);
  EventSim serial_sim(city.graph, serial.options(), TrafficScenario());
  EventSimResult serial_result = RunEventSim(serial, serial_sim, trips);

  GraphOracle concurrent_oracle(city.graph);
  ConcurrentXarSystem concurrent(city.graph, *city.spatial, *city.region,
                                 concurrent_oracle, {}, /*num_shards=*/2);
  EventSim concurrent_sim(city.graph, XarOptions{}, TrafficScenario());
  EventSimResult concurrent_result =
      RunEventSim(concurrent, concurrent_sim, trips);

  // Driven single-threaded, the sharded system replays the same protocol:
  // round-robin creation reproduces the dense id sequence and the merged
  // shard searches rank identically, so all counts line up with the serial
  // system even though every operation crossed the shard locks.
  EXPECT_EQ(serial_result.requests, concurrent_result.requests);
  EXPECT_EQ(serial_result.matched, concurrent_result.matched);
  EXPECT_EQ(serial_result.rides_created, concurrent_result.rides_created);
  EXPECT_EQ(serial_result.refreshes, concurrent_result.refreshes);
  EXPECT_EQ(serial_result.cancels_succeeded,
            concurrent_result.cancels_succeeded);
  EXPECT_EQ(serial_result.no_shows_succeeded,
            concurrent_result.no_shows_succeeded);
  EXPECT_EQ(serial_result.bookings.size(), concurrent_result.bookings.size());
}

TEST(EventSimTest, ScenarioConfigReplaysIdenticallyToSimOptions) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = RushHourTrips(city, 800);

  SimOptions options;
  options.look_to_book = 2;
  XarSystem legacy(city.graph, *city.spatial, *city.region, *city.oracle);
  SimResult legacy_result = SimulateRideSharing(legacy, trips, options);

  ScenarioConfig config;
  config.protocol = options;
  XarSystem scenario(city.graph, *city.spatial, *city.region, *city.oracle);
  SimResult scenario_result = SimulateRideSharing(scenario, trips, config);

  EXPECT_EQ(legacy_result.requests, scenario_result.requests);
  EXPECT_EQ(legacy_result.matched, scenario_result.matched);
  EXPECT_EQ(legacy_result.rides_created, scenario_result.rides_created);
  ASSERT_EQ(legacy_result.bookings.size(), scenario_result.bookings.size());
  for (std::size_t i = 0; i < legacy_result.bookings.size(); ++i) {
    EXPECT_EQ(legacy_result.bookings[i].ride, scenario_result.bookings[i].ride);
    EXPECT_EQ(legacy_result.bookings[i].pickup_eta_s,
              scenario_result.bookings[i].pickup_eta_s);
    EXPECT_EQ(legacy_result.bookings[i].walk_m,
              scenario_result.bookings[i].walk_m);
  }
}

class NoShowTest : public ::testing::Test {
 protected:
  NoShowTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {}

  RideId CreateDiagonalRide(double t = 8 * 3600.0) {
    const BoundingBox& b = city_.graph.bounds();
    RideOffer offer;
    offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                    b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
    offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                         b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
    offer.departure_time_s = t;
    Result<RideId> ride = xar_.CreateRide(offer);
    EXPECT_TRUE(ride.ok());
    return *ride;
  }

  Result<BookingRecord> BookMidRider(RequestId id, double t = 8 * 3600.0) {
    const BoundingBox& b = city_.graph.bounds();
    RideRequest req;
    req.id = id;
    req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
    req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 1800;
    std::vector<RideMatch> matches = xar_.Search(req);
    if (matches.empty()) return Status::NotFound("no match");
    return xar_.Book(matches.front().ride, req, matches.front());
  }

  TestCity& city_;
  XarSystem xar_;
};

TEST_F(NoShowTest, NoShowAfterPickupEtaReturnsSeatAndReindexes) {
  RideId ride = CreateDiagonalRide();
  double base_length = xar_.GetRide(ride)->route.length_m;
  Result<BookingRecord> booking = BookMidRider(RequestId(1));
  ASSERT_TRUE(booking.ok());

  // The vehicle reaches the pickup; the rider is not there. Cancellation is
  // no longer legal, but reporting the no-show is.
  xar_.AdvanceTime(booking->pickup_eta_s + 1.0);
  EXPECT_EQ(xar_.CancelBooking(ride, RequestId(1)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(xar_.ReportNoShow(ride, RequestId(1)).ok());

  const Ride* r = xar_.GetRide(ride);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->via_points.size(), 2u);
  EXPECT_EQ(r->seats_available, r->seats_total);
  EXPECT_NEAR(r->route.length_m, base_length, 1.0);
  EXPECT_NEAR(r->detour_used_m, 0.0, 1.0);
  EXPECT_TRUE(xar_.bookings().empty());
}

TEST_F(NoShowTest, NoShowBeforePickupAlsoWorks) {
  RideId ride = CreateDiagonalRide();
  Result<BookingRecord> booking = BookMidRider(RequestId(1));
  ASSERT_TRUE(booking.ok());
  // Reported early (rider called ahead): same unwinding as a cancellation.
  ASSERT_TRUE(xar_.ReportNoShow(ride, RequestId(1)).ok());
  EXPECT_EQ(xar_.GetRide(ride)->seats_available,
            xar_.GetRide(ride)->seats_total);
}

TEST_F(NoShowTest, NoShowAfterDropoffEtaFails) {
  RideId ride = CreateDiagonalRide();
  Result<BookingRecord> booking = BookMidRider(RequestId(1));
  ASSERT_TRUE(booking.ok());
  xar_.AdvanceTime(booking->dropoff_eta_s + 1.0);
  EXPECT_EQ(xar_.ReportNoShow(ride, RequestId(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(NoShowTest, NoShowUnknownBookingFails) {
  RideId ride = CreateDiagonalRide();
  EXPECT_EQ(xar_.ReportNoShow(ride, RequestId(77)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(xar_.ReportNoShow(RideId(999), RequestId(1)).code(),
            StatusCode::kNotFound);
}

TEST_F(NoShowTest, SeatFreedByNoShowIsRebookable) {
  XarOptions seat_options;
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, *city_.oracle,
                seat_options);
  // Dedicated system so the default seat pool is fully booked, no-shown,
  // and rebooked by a different rider.
  const BoundingBox& b = city_.graph.bounds();
  RideOffer offer;
  offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600.0;
  offer.seats = 1;
  Result<RideId> ride = xar.CreateRide(offer);
  ASSERT_TRUE(ride.ok());

  RideRequest req;
  req.id = RequestId(1);
  req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
  req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                     b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  req.earliest_departure_s = 8 * 3600.0;
  req.latest_departure_s = 8 * 3600.0 + 1800;
  Result<BookingRecord> first = xar.SearchAndBook(req);
  ASSERT_TRUE(first.ok());
  // The only seat is taken: a second rider cannot book.
  RideRequest req2 = req;
  req2.id = RequestId(2);
  EXPECT_FALSE(xar.SearchAndBook(req2).ok());

  ASSERT_TRUE(xar.ReportNoShow(first->ride, RequestId(1)).ok());
  // The freed seat is findable again through the index.
  Result<BookingRecord> second = xar.SearchAndBook(req2);
  EXPECT_TRUE(second.ok());
}

}  // namespace
}  // namespace xar
