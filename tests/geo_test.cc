#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/grid.h"
#include "geo/latlng.h"

namespace xar {
namespace {

// NYC-ish reference box used across the geo tests.
BoundingBox TestBox() { return BoundingBox{40.70, -74.02, 40.78, -73.93}; }

TEST(LatLngTest, HaversineKnownValues) {
  // One degree of latitude is ~111.2 km.
  EXPECT_NEAR(HaversineMeters({40.0, -74.0}, {41.0, -74.0}), 111195, 100);
  // Zero distance.
  EXPECT_DOUBLE_EQ(HaversineMeters({40.7, -74.0}, {40.7, -74.0}), 0.0);
  // Symmetric.
  LatLng a{40.71, -74.00}, b{40.75, -73.95};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(LatLngTest, EquirectangularMatchesHaversineAtCityScale) {
  Rng rng(1);
  BoundingBox box = TestBox();
  for (int i = 0; i < 200; ++i) {
    LatLng a{rng.Uniform(box.min_lat, box.max_lat),
             rng.Uniform(box.min_lng, box.max_lng)};
    LatLng b{rng.Uniform(box.min_lat, box.max_lat),
             rng.Uniform(box.min_lng, box.max_lng)};
    double h = HaversineMeters(a, b);
    double e = EquirectangularMeters(a, b);
    EXPECT_NEAR(e, h, std::max(1.0, h * 0.001));
  }
}

TEST(LatLngTest, OffsetMetersRoundTrips) {
  LatLng origin{40.73, -73.98};
  LatLng moved = OffsetMeters(origin, 500.0, -300.0);
  EXPECT_NEAR(HaversineMeters(origin, moved),
              std::sqrt(500.0 * 500 + 300.0 * 300), 2.0);
  LatLng back = OffsetMeters(moved, -500.0, 300.0);
  EXPECT_NEAR(HaversineMeters(origin, back), 0.0, 1.0);
}

TEST(LatLngTest, MetersPerDegree) {
  EXPECT_NEAR(MetersPerDegreeLat(), 111195, 50);
  // Longitude degrees shrink with latitude.
  EXPECT_LT(MetersPerDegreeLng(60.0), MetersPerDegreeLng(10.0));
  EXPECT_NEAR(MetersPerDegreeLng(0.0), MetersPerDegreeLat(), 1.0);
}

TEST(BoundingBoxTest, ContainsAndExtend) {
  BoundingBox box = TestBox();
  EXPECT_TRUE(box.Contains({40.74, -73.98}));
  EXPECT_FALSE(box.Contains({40.60, -73.98}));
  box.Extend({40.60, -73.98});
  EXPECT_TRUE(box.Contains({40.60, -73.98}));
}

TEST(BoundingBoxTest, FromCenterAndSize) {
  LatLng center{40.74, -73.98};
  BoundingBox box = BoundingBox::FromCenterAndSize(center, 2000.0, 1000.0);
  EXPECT_NEAR(box.WidthMeters(), 2000.0, 5.0);
  EXPECT_NEAR(box.HeightMeters(), 1000.0, 5.0);
  EXPECT_NEAR(box.Center().lat, center.lat, 1e-9);
  EXPECT_NEAR(box.Center().lng, center.lng, 1e-9);
}

// --- GridSpec ---------------------------------------------------------------

TEST(GridSpecTest, DimensionsCoverBounds) {
  GridSpec grid(TestBox(), 100.0);
  EXPECT_GE(static_cast<double>(grid.rows()) * 100.0,
            TestBox().HeightMeters() - 1);
  EXPECT_GE(static_cast<double>(grid.cols()) * 100.0,
            TestBox().WidthMeters() - 1);
  EXPECT_EQ(grid.CellCount(), grid.rows() * grid.cols());
}

TEST(GridSpecTest, PointMapsToUniqueCellContainingIt) {
  GridSpec grid(TestBox(), 100.0);
  Rng rng(2);
  BoundingBox box = TestBox();
  for (int i = 0; i < 500; ++i) {
    LatLng p{rng.Uniform(box.min_lat, box.max_lat),
             rng.Uniform(box.min_lng, box.max_lng)};
    GridId g = grid.GridOf(p);
    ASSERT_LT(g.value(), grid.CellCount());
    // The centroid of the mapped cell is within one cell diagonal.
    EXPECT_LT(HaversineMeters(p, grid.CentroidOf(g)), 100.0 * 0.71 + 2.0);
  }
}

TEST(GridSpecTest, CentroidMapsBackToSameCell) {
  GridSpec grid(TestBox(), 150.0);
  for (std::size_t i = 0; i < grid.CellCount(); i += 7) {
    GridId g(static_cast<GridId::underlying_type>(i));
    EXPECT_EQ(grid.GridOf(grid.CentroidOf(g)), g);
  }
}

TEST(GridSpecTest, OutOfBoundsClampsToEdge) {
  GridSpec grid(TestBox(), 100.0);
  GridId g = grid.GridOf({0.0, -120.0});  // far south-west of the box
  EXPECT_LT(g.value(), grid.CellCount());
  EXPECT_EQ(grid.RowOf(g), 0u);
  EXPECT_EQ(grid.ColOf(g), 0u);
  GridId h = grid.GridOf({80.0, 0.0});  // far north-east
  EXPECT_EQ(grid.RowOf(h), grid.rows() - 1);
  EXPECT_EQ(grid.ColOf(h), grid.cols() - 1);
}

TEST(GridSpecTest, RingSizes) {
  GridSpec grid(TestBox(), 100.0);
  // Use a center far from the boundary.
  GridId center = grid.At(grid.rows() / 2, grid.cols() / 2);
  EXPECT_EQ(grid.Ring(center, 0).size(), 1u);
  EXPECT_EQ(grid.Ring(center, 1).size(), 8u);
  EXPECT_EQ(grid.Ring(center, 2).size(), 16u);
  EXPECT_EQ(grid.Neighborhood(center, 2).size(), 25u);
}

TEST(GridSpecTest, RingClipsAtBoundary) {
  GridSpec grid(TestBox(), 100.0);
  GridId corner = grid.At(0, 0);
  EXPECT_EQ(grid.Ring(corner, 1).size(), 3u);
  EXPECT_EQ(grid.Neighborhood(corner, 1).size(), 4u);
}

TEST(GridSpecTest, RingsPartitionNeighborhood) {
  GridSpec grid(TestBox(), 200.0);
  GridId center = grid.At(grid.rows() / 2, grid.cols() / 2);
  std::size_t total = 0;
  for (std::size_t r = 0; r <= 3; ++r) total += grid.Ring(center, r).size();
  EXPECT_EQ(total, grid.Neighborhood(center, 3).size());
}

TEST(GridSpecTest, RowColRoundTrip) {
  GridSpec grid(TestBox(), 100.0);
  for (std::size_t r = 0; r < grid.rows(); r += 11) {
    for (std::size_t c = 0; c < grid.cols(); c += 13) {
      GridId g = grid.At(r, c);
      EXPECT_EQ(grid.RowOf(g), r);
      EXPECT_EQ(grid.ColOf(g), c);
    }
  }
}

/// Property sweep: neighboring points map to the same or adjacent cells.
class GridAdjacencyTest : public ::testing::TestWithParam<double> {};

TEST_P(GridAdjacencyTest, NearbyPointsMapToNearbyCells) {
  double cell_m = GetParam();
  GridSpec grid(TestBox(), cell_m);
  Rng rng(3);
  BoundingBox box = TestBox();
  for (int i = 0; i < 200; ++i) {
    LatLng p{rng.Uniform(box.min_lat, box.max_lat),
             rng.Uniform(box.min_lng, box.max_lng)};
    LatLng q = OffsetMeters(p, rng.Uniform(-cell_m, cell_m) * 0.4,
                            rng.Uniform(-cell_m, cell_m) * 0.4);
    if (!box.Contains(q)) continue;
    GridId gp = grid.GridOf(p);
    GridId gq = grid.GridOf(q);
    std::size_t dr = grid.RowOf(gp) > grid.RowOf(gq)
                         ? grid.RowOf(gp) - grid.RowOf(gq)
                         : grid.RowOf(gq) - grid.RowOf(gp);
    std::size_t dc = grid.ColOf(gp) > grid.ColOf(gq)
                         ? grid.ColOf(gp) - grid.ColOf(gq)
                         : grid.ColOf(gq) - grid.ColOf(gp);
    EXPECT_LE(dr, 1u);
    EXPECT_LE(dc, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridAdjacencyTest,
                         ::testing::Values(50.0, 100.0, 250.0, 1000.0));

}  // namespace
}  // namespace xar
