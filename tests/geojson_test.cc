#include "xar/geojson_export.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(GeoJsonTest, EmptyCollectionIsValidSkeleton) {
  GeoJsonWriter writer;
  EXPECT_EQ(writer.ToString(),
            R"({"type":"FeatureCollection","features":[]})");
  EXPECT_EQ(writer.NumFeatures(), 0u);
}

TEST(GeoJsonTest, PointFeature) {
  GeoJsonWriter writer;
  writer.AddPoint({40.75, -73.98}, "pickup", "marker");
  std::string doc = writer.ToString();
  EXPECT_NE(doc.find(R"("type":"Point")"), std::string::npos);
  // GeoJSON order is [lng, lat].
  EXPECT_NE(doc.find("[-73.980000,40.750000]"), std::string::npos);
  EXPECT_NE(doc.find(R"("name":"pickup")"), std::string::npos);
}

TEST(GeoJsonTest, RoadNetworkDeduplicatesTwoWayStreets) {
  GeoJsonWriter writer;
  const RoadGraph& graph = SharedCity().graph;
  writer.AddRoadNetwork(graph);
  // Dedup by unordered node pair: strictly fewer features than arcs but at
  // least half the drivable arcs.
  std::size_t drivable = 0;
  for (std::size_t u = 0; u < graph.NumNodes(); ++u) {
    for (const RoadEdge& e :
         graph.OutEdges(NodeId(static_cast<NodeId::underlying_type>(u)))) {
      if (e.drivable) ++drivable;
    }
  }
  EXPECT_LE(writer.NumFeatures(), drivable);
  EXPECT_GE(writer.NumFeatures(), drivable / 2);
}

TEST(GeoJsonTest, LandmarksCarryClusterProperties) {
  GeoJsonWriter writer;
  writer.AddLandmarks(*SharedCity().region);
  EXPECT_EQ(writer.NumFeatures(), SharedCity().region->landmarks().size());
  std::string doc = writer.ToString();
  EXPECT_EQ(CountOccurrences(doc, R"("kind":"landmark")"),
            writer.NumFeatures());
  EXPECT_EQ(CountOccurrences(doc, R"("cluster":)"), writer.NumFeatures());
}

TEST(GeoJsonTest, RideExportsRouteAndViaPoints) {
  auto& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  const BoundingBox& b = city.graph.bounds();
  RideOffer offer;
  offer.source = {b.min_lat + 0.2 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.2 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.8 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.8 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  Result<RideId> ride = xar.CreateRide(offer);
  ASSERT_TRUE(ride.ok());

  GeoJsonWriter writer;
  writer.AddRide(city.graph, *xar.GetRide(*ride));
  // One LineString + two via-points.
  EXPECT_EQ(writer.NumFeatures(), 3u);
  std::string doc = writer.ToString();
  EXPECT_EQ(CountOccurrences(doc, R"("kind":"via_point")"), 2u);
  EXPECT_NE(doc.find(R"("type":"LineString")"), std::string::npos);
}

TEST(GeoJsonTest, BracesBalance) {
  GeoJsonWriter writer;
  writer.AddRoadNetwork(SharedCity().graph);
  writer.AddLandmarks(*SharedCity().region);
  std::string doc = writer.ToString();
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

TEST(GeoJsonTest, WriteToDisk) {
  GeoJsonWriter writer;
  writer.AddPoint({40.7, -74.0}, "x", "marker");
  std::string path = std::string(::testing::TempDir()) + "/map.geojson";
  ASSERT_TRUE(writer.WriteTo(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

}  // namespace
}  // namespace xar
