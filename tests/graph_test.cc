#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "common/rng.h"
#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "graph/floyd_warshall.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A tiny diamond with a one-way shortcut: 0 -> 1 -> 3 (two-way streets),
/// 0 -> 2 -> 3 where 2 -> 3 is one-way (walkable both ways).
RoadGraph Diamond() {
  GraphBuilder b;
  NodeId n0 = b.AddNode({40.700, -74.000});
  NodeId n1 = b.AddNode(OffsetMeters({40.700, -74.000}, 1000, 0));
  NodeId n2 = b.AddNode(OffsetMeters({40.700, -74.000}, 0, 1000));
  NodeId n3 = b.AddNode(OffsetMeters({40.700, -74.000}, 1000, 1000));
  b.AddTwoWayStreet(n0, n1, 10.0);
  b.AddTwoWayStreet(n1, n3, 10.0);
  b.AddTwoWayStreet(n0, n2, 10.0);
  b.AddOneWayStreet(n2, n3, 20.0);
  return b.Build();
}

TEST(GraphBuilderTest, CsrShape) {
  RoadGraph g = Diamond();
  EXPECT_EQ(g.NumNodes(), 4u);
  // 3 two-way streets (2 arcs each) + 1 one-way (drive arc + reverse walk).
  EXPECT_EQ(g.NumEdges(), 8u);
  EXPECT_EQ(g.OutEdges(NodeId(0)).size(), 2u);
  EXPECT_DOUBLE_EQ(g.MaxSpeedMps(), 20.0);
}

TEST(GraphBuilderTest, OneWayIsDrivableOneDirectionWalkableBoth) {
  RoadGraph g = Diamond();
  bool fwd_drivable = false, bwd_drivable = false;
  bool fwd_walkable = false, bwd_walkable = false;
  for (const RoadEdge& e : g.OutEdges(NodeId(2))) {
    if (e.to == NodeId(3)) {
      fwd_drivable |= e.drivable;
      fwd_walkable |= e.walkable;
    }
  }
  for (const RoadEdge& e : g.OutEdges(NodeId(3))) {
    if (e.to == NodeId(2)) {
      bwd_drivable |= e.drivable;
      bwd_walkable |= e.walkable;
    }
  }
  EXPECT_TRUE(fwd_drivable);
  EXPECT_TRUE(fwd_walkable);
  EXPECT_FALSE(bwd_drivable);
  EXPECT_TRUE(bwd_walkable);
}

TEST(GraphBuilderTest, EdgeWeightByMetric) {
  RoadEdge e;
  e.length_m = 100;
  e.time_s = 10;
  e.drivable = true;
  e.walkable = false;
  EXPECT_DOUBLE_EQ(RoadGraph::EdgeWeight(e, Metric::kDriveDistance), 100);
  EXPECT_DOUBLE_EQ(RoadGraph::EdgeWeight(e, Metric::kDriveTime), 10);
  EXPECT_EQ(RoadGraph::EdgeWeight(e, Metric::kWalkDistance), kInf);
}

TEST(GraphBuilderTest, BoundsCoverNodes) {
  RoadGraph g = Diamond();
  for (std::size_t i = 0; i < g.NumNodes(); ++i) {
    EXPECT_TRUE(g.bounds().Contains(
        g.PositionOf(NodeId(static_cast<NodeId::underlying_type>(i)))));
  }
}

TEST(DijkstraTest, DiamondDistances) {
  RoadGraph g = Diamond();
  DijkstraEngine engine(g);
  // Driving 0->3 via either side: ~2000 m.
  EXPECT_NEAR(engine.Distance(NodeId(0), NodeId(3), Metric::kDriveDistance),
              2000, 5);
  // Driving 3->2 cannot use the one-way: must go 3->1->0->2 (~3000 m).
  EXPECT_NEAR(engine.Distance(NodeId(3), NodeId(2), Metric::kDriveDistance),
              3000, 10);
  // Walking 3->2 ignores the one-way (~1000 m).
  EXPECT_NEAR(engine.Distance(NodeId(3), NodeId(2), Metric::kWalkDistance),
              1000, 5);
  // Time prefers the fast one-way leg for 0->3: 0->2 (100s) + 2->3 (50s).
  EXPECT_NEAR(engine.Distance(NodeId(0), NodeId(3), Metric::kDriveTime), 150,
              1);
}

TEST(DijkstraTest, PathReconstruction) {
  RoadGraph g = Diamond();
  DijkstraEngine engine(g);
  Path p = engine.ShortestPath(NodeId(0), NodeId(3), Metric::kDriveTime);
  ASSERT_TRUE(p.Found());
  EXPECT_EQ(p.nodes.front(), NodeId(0));
  EXPECT_EQ(p.nodes.back(), NodeId(3));
  EXPECT_EQ(p.nodes.size(), 3u);
  EXPECT_EQ(p.nodes[1], NodeId(2));  // via the fast one-way
  EXPECT_NEAR(p.time_s, 150, 1);
  EXPECT_NEAR(p.length_m, 2000, 5);
}

TEST(DijkstraTest, SourceEqualsDestination) {
  RoadGraph g = Diamond();
  DijkstraEngine engine(g);
  EXPECT_DOUBLE_EQ(
      engine.Distance(NodeId(1), NodeId(1), Metric::kDriveDistance), 0.0);
  Path p = engine.ShortestPath(NodeId(1), NodeId(1), Metric::kDriveDistance);
  EXPECT_TRUE(p.Found());
  EXPECT_EQ(p.nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(p.length_m, 0.0);
}

TEST(DijkstraTest, DistancesToManyMatchesSingles) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 5;
  RoadGraph g = GenerateCity(opt);
  DijkstraEngine engine(g);
  std::vector<NodeId> targets;
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    targets.push_back(NodeId(
        static_cast<NodeId::underlying_type>(rng.NextIndex(g.NumNodes()))));
  }
  std::vector<double> many =
      engine.DistancesToMany(NodeId(0), targets, Metric::kDriveDistance);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        many[i],
        engine.Distance(NodeId(0), targets[i], Metric::kDriveDistance));
  }
}

TEST(DijkstraTest, NodesWithinIsExactFrontier) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 5;
  RoadGraph g = GenerateCity(opt);
  DijkstraEngine engine(g);
  double bound = 900.0;
  auto settled = engine.NodesWithin(NodeId(3), bound, Metric::kDriveDistance);
  // Every settled node is within the bound, distances are nondecreasing.
  double prev = 0;
  std::vector<bool> in_set(g.NumNodes(), false);
  for (auto [node, dist] : settled) {
    EXPECT_LE(dist, bound);
    EXPECT_GE(dist, prev);
    prev = dist;
    in_set[node.value()] = true;
    EXPECT_DOUBLE_EQ(
        dist, engine.Distance(NodeId(3), node, Metric::kDriveDistance));
  }
  // And every node not settled is beyond the bound.
  for (std::size_t i = 0; i < g.NumNodes(); ++i) {
    if (in_set[i]) continue;
    EXPECT_GT(engine.Distance(NodeId(3),
                              NodeId(static_cast<NodeId::underlying_type>(i)),
                              Metric::kDriveDistance),
              bound);
  }
}

/// Property sweep: all four engines agree with Floyd-Warshall on random
/// synthetic cities, for all metrics.
class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Metric>> {};

TEST_P(EngineEquivalenceTest, AllEnginesMatchFloydWarshall) {
  auto [seed, metric] = GetParam();
  CityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = seed;
  RoadGraph g = GenerateCity(opt);
  std::vector<double> fw = FloydWarshallDistances(g, metric);
  DijkstraEngine dijkstra(g);
  AStarEngine astar(g);
  BidirectionalDijkstra bidir(g);
  std::size_t n = g.NumNodes();
  Rng rng(seed + 1);
  for (int probe = 0; probe < 60; ++probe) {
    NodeId a(static_cast<NodeId::underlying_type>(rng.NextIndex(n)));
    NodeId b(static_cast<NodeId::underlying_type>(rng.NextIndex(n)));
    double expect = fw[a.value() * n + b.value()];
    EXPECT_NEAR(dijkstra.Distance(a, b, metric), expect, 1e-6);
    EXPECT_NEAR(astar.Distance(a, b, metric), expect, 1e-6);
    EXPECT_NEAR(bidir.Distance(a, b, metric), expect, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMetrics, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(Metric::kDriveDistance,
                                         Metric::kDriveTime,
                                         Metric::kWalkDistance)));

TEST(AStarTest, PathMatchesDijkstra) {
  CityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = 11;
  RoadGraph g = GenerateCity(opt);
  AStarEngine astar(g);
  DijkstraEngine dijkstra(g);
  Rng rng(12);
  for (int i = 0; i < 30; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    Path pa = astar.ShortestPath(a, b, Metric::kDriveDistance);
    Path pd = dijkstra.ShortestPath(a, b, Metric::kDriveDistance);
    ASSERT_EQ(pa.Found(), pd.Found());
    if (pa.Found()) {
      EXPECT_NEAR(pa.length_m, pd.length_m, 1e-6);
    }
  }
}

TEST(AStarTest, SettlesFewerNodesThanDijkstra) {
  CityOptions opt;
  opt.rows = 16;
  opt.cols = 16;
  opt.seed = 13;
  RoadGraph g = GenerateCity(opt);
  AStarEngine astar(g);
  DijkstraEngine dijkstra(g);
  std::size_t astar_total = 0, dijkstra_total = 0;
  Rng rng(14);
  for (int i = 0; i < 40; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    astar.Distance(a, b, Metric::kDriveDistance);
    dijkstra.Distance(a, b, Metric::kDriveDistance);
    astar_total += astar.last_settled_count();
    dijkstra_total += dijkstra.last_settled_count();
  }
  EXPECT_LT(astar_total, dijkstra_total);
}

TEST(OracleTest, CacheHitsOnRepeatedQueries) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  RoadGraph g = GenerateCity(opt);
  GraphOracle oracle(g, 1024);
  double d1 = oracle.DriveDistance(NodeId(0), NodeId(10));
  std::size_t after_first = oracle.computation_count();
  double d2 = oracle.DriveDistance(NodeId(0), NodeId(10));
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(oracle.computation_count(), after_first);
  EXPECT_EQ(oracle.cache_hit_count(), 1u);
}

// Strict-LRU eviction order is a kStripedLru property (the lossy CLOCK
// cache evicts approximately — see tests/oracle_cache_test.cc for its
// eviction suite), so this test pins the policy explicitly.
TEST(OracleTest, CacheEvictsAtCapacity) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  RoadGraph g = GenerateCity(opt);
  GraphOracle oracle(g, 4, RoutingBackendKind::kCh, {},
                     OracleCachePolicy::kStripedLru);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    oracle.DriveDistance(NodeId(0), NodeId(i));
  }
  std::size_t before = oracle.computation_count();
  oracle.DriveDistance(NodeId(0), NodeId(1));  // evicted long ago
  EXPECT_GT(oracle.computation_count(), before);
}

TEST(OracleTest, RouteMatchesDistance) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  RoadGraph g = GenerateCity(opt);
  GraphOracle oracle(g);
  Path p = oracle.DriveRoute(NodeId(2), NodeId(40));
  ASSERT_TRUE(p.Found());
  EXPECT_NEAR(p.length_m, oracle.DriveDistance(NodeId(2), NodeId(40)), 1e-6);
}

TEST(OracleTest, HaversineLowerBoundsGraphDistance) {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  RoadGraph g = GenerateCity(opt);
  GraphOracle exact(g);
  HaversineOracle approx(g);
  Rng rng(16);
  for (int i = 0; i < 40; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(g.NumNodes())));
    EXPECT_LE(approx.DriveDistance(a, b), exact.DriveDistance(a, b) + 1.0);
  }
}

TEST(SpatialIndexTest, NearestMatchesBruteForce) {
  CityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = 17;
  RoadGraph g = GenerateCity(opt);
  SpatialNodeIndex index(g);
  Rng rng(18);
  const BoundingBox& b = g.bounds();
  for (int i = 0; i < 100; ++i) {
    LatLng p{rng.Uniform(b.min_lat, b.max_lat),
             rng.Uniform(b.min_lng, b.max_lng)};
    NodeId got = index.NearestNode(p);
    double best = kInf;
    for (std::size_t n = 0; n < g.NumNodes(); ++n) {
      best = std::min(
          best, EquirectangularMeters(
                    p, g.PositionOf(
                           NodeId(static_cast<NodeId::underlying_type>(n)))));
    }
    EXPECT_NEAR(EquirectangularMeters(p, g.PositionOf(got)), best, 1e-6);
  }
}

TEST(SpatialIndexTest, NodesWithinRadius) {
  CityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.seed = 17;
  RoadGraph g = GenerateCity(opt);
  SpatialNodeIndex index(g);
  LatLng center = g.bounds().Center();
  std::vector<NodeId> close = index.NodesWithin(center, 600.0);
  std::size_t brute = 0;
  for (std::size_t n = 0; n < g.NumNodes(); ++n) {
    if (EquirectangularMeters(
            center, g.PositionOf(NodeId(
                        static_cast<NodeId::underlying_type>(n)))) <= 600.0) {
      ++brute;
    }
  }
  EXPECT_EQ(close.size(), brute);
}

/// Generated cities must be strongly connected for driving.
class GeneratorConnectivityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorConnectivityTest, DrivableStronglyConnected) {
  CityOptions opt;
  opt.rows = 9;
  opt.cols = 9;
  opt.removed_fraction = 0.12;  // aggressive removal to stress the SCC pass
  opt.seed = GetParam();
  RoadGraph g = GenerateCity(opt);
  ASSERT_GT(g.NumNodes(), 20u);
  DijkstraEngine engine(g);
  auto reachable =
      engine.NodesWithin(NodeId(0), kInf, Metric::kDriveDistance);
  EXPECT_EQ(reachable.size(), g.NumNodes());
  // And back to node 0 from an arbitrary far node.
  NodeId far(static_cast<NodeId::underlying_type>(g.NumNodes() - 1));
  EXPECT_LT(engine.Distance(far, NodeId(0), Metric::kDriveDistance), kInf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorConnectivityTest,
                         ::testing::Values(1, 7, 42, 99, 123));

TEST(GeneratorTest, DeterministicForSeed) {
  CityOptions opt;
  opt.rows = 7;
  opt.cols = 7;
  opt.seed = 21;
  RoadGraph a = GenerateCity(opt);
  RoadGraph b = GenerateCity(opt);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (std::size_t i = 0; i < a.NumNodes(); ++i) {
    NodeId n(static_cast<NodeId::underlying_type>(i));
    EXPECT_EQ(a.PositionOf(n), b.PositionOf(n));
  }
}

TEST(GeneratorTest, MemoryFootprintPositive) {
  CityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  RoadGraph g = GenerateCity(opt);
  EXPECT_GT(g.MemoryFootprint(), g.NumNodes() * sizeof(LatLng));
}

}  // namespace
}  // namespace xar
