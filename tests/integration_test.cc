// End-to-end pipeline tests: full pre-processing + runtime on a fresh city,
// checking the cross-module invariants the unit suites cannot see — index
// consistency under a whole day of create/search/book/track traffic, the
// detour approximation guarantee, and strict request-side thresholds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "discretize/region_index.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/spatial_index.h"
#include "sim/simulator.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

/// One fully simulated world per (seed) parameter.
class PipelineTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    CityOptions copt;
    copt.rows = 16;
    copt.cols = 16;
    copt.seed = GetParam();
    graph_ = GenerateCity(copt);
    spatial_ = std::make_unique<SpatialNodeIndex>(graph_);
    DiscretizationOptions dopt;
    dopt.landmarks.num_candidates = 300;
    dopt.landmarks.seed = GetParam() + 1;
    region_ = std::make_unique<RegionIndex>(
        RegionIndex::Build(graph_, *spatial_, dopt));
    oracle_ = std::make_unique<GraphOracle>(graph_);
    xar_ = std::make_unique<XarSystem>(graph_, *spatial_, *region_, *oracle_);

    WorkloadOptions wopt;
    wopt.num_trips = 2500;
    wopt.seed = GetParam() + 2;
    trips_ = GenerateTrips(graph_.bounds(), wopt);
    result_ = SimulateRideSharing(*xar_, trips_);
  }

  RoadGraph graph_;
  std::unique_ptr<SpatialNodeIndex> spatial_;
  std::unique_ptr<RegionIndex> region_;
  std::unique_ptr<GraphOracle> oracle_;
  std::unique_ptr<XarSystem> xar_;
  std::vector<TaxiTrip> trips_;
  SimResult result_;
};

TEST_P(PipelineTest, SimulationServesTraffic) {
  EXPECT_EQ(result_.requests, trips_.size());
  EXPECT_GT(result_.matched, result_.requests / 20);  // some sharing happens
  EXPECT_GT(result_.rides_created, 0u);
}

TEST_P(PipelineTest, DetourGuaranteeAcrossAllBookings) {
  // Section V guarantee: a booking admitted by the (approximate) search can
  // overrun the ride's detour budget by at most 4*epsilon; the grid->landmark
  // association adds at most 2*Delta of slack on top in this implementation.
  double bound = 4 * region_->epsilon() +
                 2 * region_->options().max_drive_to_landmark_m;
  for (const BookingRecord& b : result_.bookings) {
    double excess = b.actual_detour_m - b.budget_before_m;
    EXPECT_LE(excess, bound + 1e-6)
        << "booking for request " << b.request.value();
  }
}

TEST_P(PipelineTest, EveryBookingWithinWalkThreshold) {
  for (const BookingRecord& b : result_.bookings) {
    EXPECT_LE(b.walk_m, xar_->options().default_walk_limit_m + 1e-6);
  }
}

TEST_P(PipelineTest, BookingsUseAtMostFourShortestPaths) {
  for (const BookingRecord& b : result_.bookings) {
    EXPECT_GE(b.shortest_path_computations, 1u);
    EXPECT_LE(b.shortest_path_computations, 4u);
  }
}

TEST_P(PipelineTest, RideStateConsistentAfterFullDay) {
  for (std::size_t i = 0; i < xar_->NumRides(); ++i) {
    const Ride* r = xar_->GetRide(RideId(static_cast<RideId::underlying_type>(i)));
    ASSERT_NE(r, nullptr);
    // Via-points aligned with the route and monotone in time.
    ASSERT_EQ(r->via_points.size(), r->via_route_index.size());
    for (std::size_t v = 0; v < r->via_points.size(); ++v) {
      EXPECT_EQ(r->route.nodes[r->via_route_index[v]], r->via_points[v].node);
      if (v > 0) {
        EXPECT_LE(r->via_route_index[v - 1], r->via_route_index[v]);
        EXPECT_LE(r->via_points[v - 1].eta_s, r->via_points[v].eta_s + 1e-6);
      }
    }
    // Seats within range; detour bookkeeping non-negative.
    EXPECT_GE(r->seats_available, 0);
    EXPECT_LE(r->seats_available, r->seats_total);
    EXPECT_GE(r->detour_used_m, -1e-9);
    // Cumulative profiles are monotone and sized to the route.
    ASSERT_EQ(r->route_cum_dist_m.size(), r->route.nodes.size());
    for (std::size_t j = 1; j < r->route_cum_dist_m.size(); ++j) {
      EXPECT_GE(r->route_cum_dist_m[j], r->route_cum_dist_m[j - 1]);
      EXPECT_GE(r->route_cum_time_s[j], r->route_cum_time_s[j - 1]);
    }
  }
}

TEST_P(PipelineTest, IndexListsConsistentWithRegistrations) {
  const RideIndex& index = xar_->ride_index();
  for (std::size_t c = 0; c < region_->NumClusters(); ++c) {
    ClusterId cluster(static_cast<ClusterId::underlying_type>(c));
    for (const PotentialRide& pr : index.ListOf(cluster).by_ride()) {
      const Ride* ride = xar_->GetRide(pr.ride);
      ASSERT_NE(ride, nullptr);
      EXPECT_TRUE(ride->active) << "finished ride still listed";
      const RideRegistration* reg = index.RegistrationOf(pr.ride);
      ASSERT_NE(reg, nullptr);
      EXPECT_TRUE(std::binary_search(reg->registered_clusters.begin(),
                                     reg->registered_clusters.end(), cluster));
    }
  }
}

TEST_P(PipelineTest, SearchResultsAreBookableRightAway) {
  // Fresh requests against the end-of-day state: every returned match must
  // book successfully (index entries are never stale).
  WorkloadOptions wopt;
  wopt.num_trips = 150;
  wopt.seed = GetParam() + 9;
  std::size_t attempted = 0;
  for (const TaxiTrip& t : GenerateTrips(graph_.bounds(), wopt)) {
    RideRequest req;
    req.id = RequestId(1000000 + attempted);
    req.source = t.pickup;
    req.destination = t.dropoff;
    req.earliest_departure_s = xar_->Now();
    req.latest_departure_s = xar_->Now() + 1800;
    std::vector<RideMatch> matches = xar_->Search(req);
    if (matches.empty()) continue;
    ++attempted;
    Result<BookingRecord> booking = xar_->Book(matches[0].ride, req,
                                               matches[0]);
    EXPECT_TRUE(booking.ok()) << booking.status().ToString();
    if (attempted >= 10) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace xar
