#include "common/io.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xar {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BinaryIoTest, RoundTripsPodsVectorsAndStrings) {
  std::string path = TempPath("io_roundtrip.bin");
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.Write(std::uint32_t{0xDEADBEEF});
    writer.Write(3.14159);
    writer.WriteVector(std::vector<std::uint16_t>{1, 2, 3, 4, 5});
    writer.WriteVector(std::vector<double>{});
    writer.WriteString("xhare-a-ride");
    writer.WriteString("");
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  std::uint32_t magic = 0;
  double pi = 0;
  reader.Read(&magic);
  reader.Read(&pi);
  EXPECT_EQ(magic, 0xDEADBEEF);
  EXPECT_DOUBLE_EQ(pi, 3.14159);
  std::vector<std::uint16_t> shorts;
  reader.ReadVector(&shorts);
  EXPECT_EQ(shorts, (std::vector<std::uint16_t>{1, 2, 3, 4, 5}));
  std::vector<double> empty;
  reader.ReadVector(&empty);
  EXPECT_TRUE(empty.empty());
  std::string s, blank;
  reader.ReadString(&s);
  reader.ReadString(&blank);
  EXPECT_EQ(s, "xhare-a-ride");
  EXPECT_TRUE(blank.empty());
  EXPECT_TRUE(reader.ok());
}

TEST(BinaryIoTest, ReadingPastEndSetsError) {
  std::string path = TempPath("io_short.bin");
  {
    BinaryWriter writer(path);
    writer.Write(std::uint8_t{1});
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  std::uint64_t big = 0;
  reader.Read(&big);  // 8 bytes from a 1-byte file
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryIoTest, CorruptVectorLengthRejected) {
  std::string path = TempPath("io_huge.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(1ULL << 40);  // absurd element count
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  std::vector<double> values;
  reader.ReadVector(&values);
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(values.empty());
}

TEST(BinaryIoTest, MissingFileReportsNotOk) {
  BinaryReader reader(TempPath("io_absent.bin"));
  EXPECT_FALSE(reader.ok());
  std::uint32_t v = 0;
  reader.Read(&v);  // safe no-op
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryIoTest, UnwritablePathFailsOnClose) {
  BinaryWriter writer("/nonexistent_dir/file.bin");
  EXPECT_FALSE(writer.ok());
  writer.Write(1);  // safe no-op
  EXPECT_FALSE(writer.Close().ok());
}

}  // namespace
}  // namespace xar
