// Tests for the kinetic-booking extension (XarOptions::kinetic_booking):
// pre-departure bookings re-order all rider stops optimally instead of
// splicing into fixed segments.

#include <gtest/gtest.h>

#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class KineticBookingTest : public ::testing::Test {
 protected:
  KineticBookingTest() : city_(SharedCity()) {}

  XarOptions KineticOptions() {
    XarOptions opt;
    opt.kinetic_booking = true;
    return opt;
  }

  LatLng Frac(double fy, double fx) const {
    const BoundingBox& b = city_.graph.bounds();
    return {b.min_lat + fy * (b.max_lat - b.min_lat),
            b.min_lng + fx * (b.max_lng - b.min_lng)};
  }

  RideId CreateDiagonal(XarSystem& xar, double t) {
    RideOffer offer;
    offer.source = Frac(0.05, 0.05);
    offer.destination = Frac(0.95, 0.95);
    offer.departure_time_s = t;
    offer.detour_limit_m = 8000;
    Result<RideId> ride = xar.CreateRide(offer);
    EXPECT_TRUE(ride.ok());
    return *ride;
  }

  Result<BookingRecord> BookRider(XarSystem& xar, RequestId id, double fy0,
                                  double fx0, double fy1, double fx1,
                                  double t) {
    RideRequest req;
    req.id = id;
    req.source = Frac(fy0, fx0);
    req.destination = Frac(fy1, fx1);
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 2400;
    std::vector<RideMatch> matches = xar.Search(req);
    if (matches.empty()) return Status::NotFound("no match");
    return xar.Book(matches.front().ride, req, matches.front());
  }

  void ExpectConsistent(XarSystem& xar, RideId id) {
    const Ride* r = xar.GetRide(id);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->via_points.size(), r->via_route_index.size());
    EXPECT_EQ(r->via_points.front().node, r->source);
    EXPECT_EQ(r->via_points.back().node, r->destination);
    for (std::size_t v = 0; v < r->via_points.size(); ++v) {
      EXPECT_EQ(r->route.nodes[r->via_route_index[v]], r->via_points[v].node);
      if (v > 0) {
        EXPECT_LE(r->via_route_index[v - 1], r->via_route_index[v]);
      }
    }
    // Pickup precedes drop-off for every rider, capacity never exceeded.
    int onboard = 0;
    std::vector<bool> picked(1 << 16, false);
    for (const ViaPoint& vp : r->via_points) {
      if (!vp.request.valid()) continue;
      if (vp.is_pickup) {
        ++onboard;
        picked[vp.request.value()] = true;
      } else {
        EXPECT_TRUE(picked[vp.request.value()]);
        --onboard;
      }
      EXPECT_LE(onboard, r->seats_total);
      EXPECT_GE(onboard, 0);
    }
  }

  TestCity& city_;
};

TEST_F(KineticBookingTest, SingleRiderBookingWorks) {
  GraphOracle oracle(city_.graph);
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle,
                KineticOptions());
  RideId ride = CreateDiagonal(xar, 8 * 3600);
  Result<BookingRecord> booking =
      BookRider(xar, RequestId(1), 0.3, 0.3, 0.7, 0.7, 8 * 3600);
  ASSERT_TRUE(booking.ok()) << booking.status().ToString();
  EXPECT_LE(booking->pickup_eta_s, booking->dropoff_eta_s);
  ExpectConsistent(xar, ride);
}

TEST_F(KineticBookingTest, NeverLongerThanFixedOrderSplice) {
  // Same three riders booked on both a standard and a kinetic system: the
  // kinetic route can only be shorter or equal (it optimizes the ordering).
  GraphOracle o1(city_.graph);
  GraphOracle o2(city_.graph);
  XarSystem standard(city_.graph, *city_.spatial, *city_.region, o1);
  XarSystem kinetic(city_.graph, *city_.spatial, *city_.region, o2,
                    KineticOptions());
  RideId rs = CreateDiagonal(standard, 8 * 3600);
  RideId rk = CreateDiagonal(kinetic, 8 * 3600);

  const double spots[3][4] = {{0.25, 0.25, 0.55, 0.55},
                              {0.6, 0.6, 0.9, 0.9},
                              {0.35, 0.35, 0.75, 0.75}};
  int shared = 0;
  for (int r = 0; r < 3; ++r) {
    RequestId id(static_cast<RequestId::underlying_type>(r + 1));
    Result<BookingRecord> a = BookRider(standard, id, spots[r][0],
                                        spots[r][1], spots[r][2],
                                        spots[r][3], 8 * 3600);
    Result<BookingRecord> b = BookRider(kinetic, id, spots[r][0], spots[r][1],
                                        spots[r][2], spots[r][3], 8 * 3600);
    if (a.ok() && b.ok() && a->ride == rs && b->ride == rk) ++shared;
  }
  ASSERT_GE(shared, 2);
  EXPECT_LE(kinetic.GetRide(rk)->route.length_m,
            standard.GetRide(rs)->route.length_m + 1e-6);
  ExpectConsistent(kinetic, rk);
  ExpectConsistent(standard, rs);
}

TEST_F(KineticBookingTest, BooksKineticallyIntoInProgressRide) {
  // Since the persistent-schedule refactor (ISSUE 10) a mid-flight booking
  // no longer falls back to the fixed-order splice: the ride's kinetic tree
  // is rooted at the vehicle's position and the rider is inserted there, so
  // the paper's <= 4 shortest-path bound is deliberately forfeited on this
  // path (DESIGN.md section 14) in exchange for true pooling.
  GraphOracle oracle(city_.graph);
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle,
                KineticOptions());
  RideId ride = CreateDiagonal(xar, 8 * 3600);
  const Ride* r = xar.GetRide(ride);
  double mid = r->departure_time_s + r->route.time_s * 0.3;
  xar.AdvanceTime(mid);
  Result<BookingRecord> booking =
      BookRider(xar, RequestId(1), 0.6, 0.6, 0.85, 0.85, mid);
  if (booking.ok() && booking->ride == ride) {
    ExpectConsistent(xar, ride);
    // The ride now owns a persistent schedule, and the rider's stops are
    // scheduled ahead of the vehicle, never behind it.
    const RideSchedule* sched = xar.GetSchedule(ride);
    ASSERT_NE(sched, nullptr);
    EXPECT_GE(sched->PendingStops(), 2u);
    EXPECT_GE(booking->pickup_eta_s, mid - 1e-6);
    EXPECT_GE(booking->dropoff_eta_s, booking->pickup_eta_s);
    EXPECT_EQ(xar.pooling_stats().insertions, 1u);
  }
}

TEST_F(KineticBookingTest, SearchStillFindsKineticallyBookedRides) {
  GraphOracle oracle(city_.graph);
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle,
                KineticOptions());
  RideId ride = CreateDiagonal(xar, 8 * 3600);
  ASSERT_TRUE(
      BookRider(xar, RequestId(1), 0.3, 0.3, 0.7, 0.7, 8 * 3600).ok());
  // The index was refreshed with the optimized route; a second rider can
  // still find and book it.
  Result<BookingRecord> second =
      BookRider(xar, RequestId(2), 0.4, 0.4, 0.8, 0.8, 8 * 3600);
  if (second.ok() && second->ride == ride) {
    ExpectConsistent(xar, ride);
    EXPECT_EQ(xar.GetRide(ride)->seats_available,
              xar.GetRide(ride)->seats_total - 2);
  }
}

}  // namespace
}  // namespace xar
