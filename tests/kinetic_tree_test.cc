#include "schedule/kinetic_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tests/test_helpers.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

constexpr double kInf = std::numeric_limits<double>::infinity();

class KineticTreeTest : public ::testing::Test {
 protected:
  KineticTreeTest() : city_(SharedCity()) {}

  NodeId RandomNode(Rng& rng) const {
    return NodeId(static_cast<NodeId::underlying_type>(
        rng.NextIndex(city_.graph.NumNodes())));
  }

  /// A rider with generous deadlines (pickup within `slack_s` of the
  /// vehicle's start, drop-off within twice that).
  std::pair<ScheduleStop, ScheduleStop> MakeRider(RequestId id, NodeId a,
                                                  NodeId b, double t0,
                                                  double slack_s = 3600) {
    ScheduleStop pickup{a, id, true, t0 + slack_s};
    ScheduleStop dropoff{b, id, false, t0 + 2 * slack_s};
    return {pickup, dropoff};
  }

  TestCity& city_;
};

TEST_F(KineticTreeTest, SingleRiderSchedule) {
  Rng rng(1);
  NodeId origin = RandomNode(rng);
  KineticTree tree(origin, 1000, 3, *city_.oracle);
  EXPECT_TRUE(tree.empty());

  auto [pickup, dropoff] =
      MakeRider(RequestId(1), RandomNode(rng), RandomNode(rng), 1000);
  ASSERT_TRUE(tree.Insert(pickup, dropoff));
  EXPECT_EQ(tree.NumPendingStops(), 2u);

  Schedule s = tree.BestSchedule();
  ASSERT_EQ(s.stops.size(), 2u);
  EXPECT_TRUE(s.stops[0].is_pickup);
  EXPECT_FALSE(s.stops[1].is_pickup);
  double expect = 1000 +
                  city_.oracle->DriveTime(origin, pickup.node) +
                  city_.oracle->DriveTime(pickup.node, dropoff.node);
  EXPECT_NEAR(s.completion_time_s, expect, 1e-6);
}

TEST_F(KineticTreeTest, ImpossibleDeadlineRejected) {
  Rng rng(2);
  NodeId origin = RandomNode(rng);
  KineticTree tree(origin, 1000, 3, *city_.oracle);
  ScheduleStop pickup{RandomNode(rng), RequestId(1), true, 1000.5};  // 0.5 s
  ScheduleStop dropoff{RandomNode(rng), RequestId(1), false, 5000};
  EXPECT_EQ(tree.TryInsert(pickup, dropoff), kInf);
  EXPECT_FALSE(tree.Insert(pickup, dropoff));
  EXPECT_TRUE(tree.empty());  // unchanged
}

TEST_F(KineticTreeTest, CapacityOneForcesSequentialService) {
  Rng rng(3);
  NodeId origin = RandomNode(rng);
  KineticTree tree(origin, 0, /*capacity=*/1, *city_.oracle);
  auto r1 = MakeRider(RequestId(1), RandomNode(rng), RandomNode(rng), 0,
                      36000);
  auto r2 = MakeRider(RequestId(2), RandomNode(rng), RandomNode(rng), 0,
                      36000);
  ASSERT_TRUE(tree.Insert(r1.first, r1.second));
  ASSERT_TRUE(tree.Insert(r2.first, r2.second));
  // Every retained ordering must drop a rider before picking the other.
  Schedule s = tree.BestSchedule();
  ASSERT_EQ(s.stops.size(), 4u);
  int onboard = 0;
  for (const ScheduleStop& stop : s.stops) {
    onboard += stop.is_pickup ? 1 : -1;
    EXPECT_GE(onboard, 0);
    EXPECT_LE(onboard, 1);
  }
}

TEST_F(KineticTreeTest, PickupAlwaysPrecedesDropoff) {
  Rng rng(4);
  KineticTree tree(RandomNode(rng), 0, 3, *city_.oracle);
  for (std::uint32_t r = 1; r <= 3; ++r) {
    auto rider = MakeRider(RequestId(r), RandomNode(rng), RandomNode(rng), 0,
                           36000);
    ASSERT_TRUE(tree.Insert(rider.first, rider.second));
  }
  Schedule s = tree.BestSchedule();
  ASSERT_EQ(s.stops.size(), 6u);
  std::vector<bool> picked(4, false);
  for (const ScheduleStop& stop : s.stops) {
    if (stop.is_pickup) {
      picked[stop.request.value()] = true;
    } else {
      EXPECT_TRUE(picked[stop.request.value()]);
    }
  }
}

TEST_F(KineticTreeTest, TryInsertMatchesInsert) {
  Rng rng(5);
  KineticTree tree(RandomNode(rng), 0, 3, *city_.oracle);
  auto r1 = MakeRider(RequestId(1), RandomNode(rng), RandomNode(rng), 0);
  ASSERT_TRUE(tree.Insert(r1.first, r1.second));
  auto r2 = MakeRider(RequestId(2), RandomNode(rng), RandomNode(rng), 0);
  double promised = tree.TryInsert(r2.first, r2.second);
  ASSERT_LT(promised, kInf);
  ASSERT_TRUE(tree.Insert(r2.first, r2.second));
  EXPECT_NEAR(tree.BestSchedule().completion_time_s, promised, 1e-9);
}

TEST_F(KineticTreeTest, AdvanceConsumesStopsInOrder) {
  Rng rng(6);
  NodeId origin = RandomNode(rng);
  KineticTree tree(origin, 0, 3, *city_.oracle);
  auto r1 = MakeRider(RequestId(1), RandomNode(rng), RandomNode(rng), 0);
  auto r2 = MakeRider(RequestId(2), RandomNode(rng), RandomNode(rng), 0);
  ASSERT_TRUE(tree.Insert(r1.first, r1.second));
  ASSERT_TRUE(tree.Insert(r2.first, r2.second));

  Schedule planned = tree.BestSchedule();
  std::vector<ScheduleStop> served;
  double prev_time = 0;
  while (!tree.empty()) {
    ScheduleStop stop = tree.AdvanceToNextStop();
    served.push_back(stop);
    EXPECT_GE(tree.time(), prev_time);
    prev_time = tree.time();
    EXPECT_EQ(tree.position(), stop.node);
  }
  ASSERT_EQ(served.size(), 4u);
  // Advancing greedily follows the planned best schedule.
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i], planned.stops[i]);
  }
  EXPECT_NEAR(prev_time, planned.completion_time_s, 1e-9);
}

/// Property: the kinetic tree's best schedule equals the brute-force
/// optimum over all valid permutations, across random instances.
class KineticTreeOptimalityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KineticTreeOptimalityTest, MatchesBruteForce) {
  TestCity& city = SharedCity();
  Rng rng(GetParam());
  auto random_node = [&] {
    return NodeId(static_cast<NodeId::underlying_type>(
        rng.NextIndex(city.graph.NumNodes())));
  };

  NodeId origin = random_node();
  double t0 = 8 * 3600;
  int capacity = 2 + static_cast<int>(rng.NextIndex(2));
  std::vector<std::pair<ScheduleStop, ScheduleStop>> riders;
  KineticTree tree(origin, t0, capacity, *city.oracle);
  for (std::uint32_t r = 0; r < 3; ++r) {
    // Mixed deadlines: some tight (may prune orderings), some loose.
    double pickup_slack = rng.Uniform(600, 2400);
    double dropoff_slack = pickup_slack + rng.Uniform(600, 2400);
    ScheduleStop pickup{random_node(), RequestId(r), true, t0 + pickup_slack};
    ScheduleStop dropoff{random_node(), RequestId(r), false,
                         t0 + dropoff_slack};
    riders.emplace_back(pickup, dropoff);
    bool inserted = tree.Insert(pickup, dropoff);
    if (!inserted) {
      // Tree insertion is exact: brute force over the inserted set plus
      // this rider must also be infeasible.
      std::vector<std::pair<ScheduleStop, ScheduleStop>> attempt = riders;
      Schedule brute = BruteForceBestSchedule(origin, t0, capacity,
                                              *city.oracle, attempt);
      EXPECT_EQ(brute.completion_time_s, kInf);
      riders.pop_back();
    }
  }
  if (riders.empty()) GTEST_SKIP() << "all riders infeasible for this seed";

  Schedule tree_best = tree.BestSchedule();
  Schedule brute = BruteForceBestSchedule(origin, t0, capacity, *city.oracle,
                                          riders);
  ASSERT_LT(brute.completion_time_s, kInf);
  EXPECT_NEAR(tree_best.completion_time_s, brute.completion_time_s, 1e-6);
  EXPECT_EQ(tree_best.stops.size(), riders.size() * 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KineticTreeOptimalityTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST_F(KineticTreeTest, NumSchedulesGrowsWithRiders) {
  Rng rng(7);
  KineticTree tree(RandomNode(rng), 0, 4, *city_.oracle);
  auto r1 = MakeRider(RequestId(1), RandomNode(rng), RandomNode(rng), 0,
                      72000);
  ASSERT_TRUE(tree.Insert(r1.first, r1.second));
  std::size_t one = tree.NumSchedules();
  auto r2 = MakeRider(RequestId(2), RandomNode(rng), RandomNode(rng), 0,
                      72000);
  ASSERT_TRUE(tree.Insert(r2.first, r2.second));
  EXPECT_GT(tree.NumSchedules(), one);
  // With fully loose deadlines and capacity 4, all valid interleavings of
  // two pickup/drop-off pairs survive: 6 orderings.
  EXPECT_EQ(tree.NumSchedules(), 6u);
}

}  // namespace
}  // namespace xar
