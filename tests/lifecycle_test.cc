// Long-interaction lifecycle tests: one ride carrying several riders
// through bookings, mid-flight tracking and cancellations — the state
// machine interactions no single-operation test exercises.

#include <gtest/gtest.h>

#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class LifecycleTest : public ::testing::Test {
 protected:
  LifecycleTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {}

  LatLng Frac(double fy, double fx) const {
    const BoundingBox& b = city_.graph.bounds();
    return {b.min_lat + fy * (b.max_lat - b.min_lat),
            b.min_lng + fx * (b.max_lng - b.min_lng)};
  }

  RideId CreateDiagonal(double t, double detour_m = 6000) {
    RideOffer offer;
    offer.source = Frac(0.05, 0.05);
    offer.destination = Frac(0.95, 0.95);
    offer.departure_time_s = t;
    offer.detour_limit_m = detour_m;
    Result<RideId> ride = xar_.CreateRide(offer);
    EXPECT_TRUE(ride.ok());
    return *ride;
  }

  Result<BookingRecord> BookBetween(RequestId id, double fy0, double fx0,
                                    double fy1, double fx1, double t) {
    RideRequest req;
    req.id = id;
    req.source = Frac(fy0, fx0);
    req.destination = Frac(fy1, fx1);
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 2400;
    std::vector<RideMatch> matches = xar_.Search(req);
    if (matches.empty()) return Status::NotFound("no match");
    return xar_.Book(matches.front().ride, req, matches.front());
  }

  void ExpectRideInvariants(RideId id) {
    const Ride* r = xar_.GetRide(id);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->via_points.size(), r->via_route_index.size());
    for (std::size_t v = 0; v < r->via_points.size(); ++v) {
      EXPECT_EQ(r->route.nodes[r->via_route_index[v]], r->via_points[v].node);
      if (v > 0) {
        EXPECT_LE(r->via_route_index[v - 1], r->via_route_index[v]);
        EXPECT_LE(r->via_points[v - 1].eta_s, r->via_points[v].eta_s + 1e-6);
      }
    }
    EXPECT_GE(r->seats_available, 0);
    EXPECT_LE(r->detour_used_m, r->detour_limit_m + 4 * city_.region->epsilon() +
                                    2 * city_.region->options()
                                            .max_drive_to_landmark_m);
  }

  TestCity& city_;
  XarSystem xar_;
};

TEST_F(LifecycleTest, ThreeRidersFillTheCar) {
  RideId ride = CreateDiagonal(8 * 3600);
  int booked = 0;
  // Three riders along the diagonal, staggered.
  const double spots[3][4] = {{0.2, 0.2, 0.5, 0.5},
                              {0.3, 0.3, 0.7, 0.7},
                              {0.45, 0.45, 0.85, 0.85}};
  for (int r = 0; r < 3; ++r) {
    Result<BookingRecord> b =
        BookBetween(RequestId(static_cast<RequestId::underlying_type>(r + 1)),
                    spots[r][0], spots[r][1], spots[r][2], spots[r][3],
                    8 * 3600);
    if (b.ok() && b->ride == ride) ++booked;
    ExpectRideInvariants(ride);
  }
  ASSERT_GE(booked, 2) << "expected most riders to share the diagonal ride";
  const Ride* r = xar_.GetRide(ride);
  EXPECT_EQ(r->seats_available, r->seats_total - booked);
  EXPECT_EQ(r->via_points.size(), 2u + 2u * static_cast<unsigned>(booked));
}

TEST_F(LifecycleTest, CancelMiddleRiderKeepsOthersConsistent) {
  RideId ride = CreateDiagonal(8 * 3600);
  ASSERT_TRUE(
      BookBetween(RequestId(1), 0.2, 0.2, 0.6, 0.6, 8 * 3600).ok());
  Result<BookingRecord> second =
      BookBetween(RequestId(2), 0.35, 0.35, 0.8, 0.8, 8 * 3600);
  if (!second.ok() || second->ride != ride) {
    GTEST_SKIP() << "second rider did not land on the same ride";
  }
  ASSERT_TRUE(xar_.CancelBooking(ride, RequestId(1)).ok());
  ExpectRideInvariants(ride);
  // Rider 2's via-points survive and stay ordered.
  const Ride* r = xar_.GetRide(ride);
  int rider2 = 0;
  for (const ViaPoint& vp : r->via_points) {
    if (vp.request == RequestId(2)) ++rider2;
  }
  EXPECT_EQ(rider2, 2);
}

TEST_F(LifecycleTest, BookingAfterMidFlightTrackingUsesRemainingRoute) {
  RideId ride = CreateDiagonal(8 * 3600);
  const Ride* r = xar_.GetRide(ride);
  double one_third = r->departure_time_s + r->route.time_s / 3;
  xar_.AdvanceTime(one_third);

  // A rider near the start must not match any more; one near the end must.
  RideRequest early;
  early.id = RequestId(10);
  early.source = Frac(0.1, 0.1);
  early.destination = Frac(0.25, 0.25);
  early.earliest_departure_s = one_third;
  early.latest_departure_s = one_third + 1800;
  for (const RideMatch& m : xar_.Search(early)) EXPECT_NE(m.ride, ride);

  Result<BookingRecord> late =
      BookBetween(RequestId(11), 0.6, 0.6, 0.85, 0.85, one_third);
  if (late.ok() && late->ride == ride) {
    // The pickup must be scheduled after the current time.
    EXPECT_GE(late->pickup_eta_s, one_third - 1e-6);
    ExpectRideInvariants(ride);
  }
}

TEST_F(LifecycleTest, FullDayLifecycleEndsClean) {
  RideId ride = CreateDiagonal(8 * 3600);
  (void)BookBetween(RequestId(1), 0.2, 0.2, 0.6, 0.6, 8 * 3600);
  (void)BookBetween(RequestId(2), 0.4, 0.4, 0.8, 0.8, 8 * 3600);
  double arrival = xar_.GetRide(ride)->ArrivalTimeS();
  // March time forward in small steps across the whole ride, then step
  // past the arrival.
  for (double t = 8 * 3600; t < arrival + 120; t += 300) {
    xar_.AdvanceTime(t);
  }
  xar_.AdvanceTime(arrival + 121);
  EXPECT_FALSE(xar_.GetRide(ride)->active);
  EXPECT_EQ(xar_.ride_index().RegistrationOf(ride), nullptr);
  // No cluster still lists the ride.
  for (std::size_t c = 0; c < city_.region->NumClusters(); ++c) {
    EXPECT_FALSE(
        xar_.ride_index()
            .ListOf(ClusterId(static_cast<ClusterId::underlying_type>(c)))
            .Contains(ride));
  }
}

TEST_F(LifecycleTest, CancelRideWithPassengersDropsListings) {
  RideId ride = CreateDiagonal(8 * 3600);
  (void)BookBetween(RequestId(1), 0.2, 0.2, 0.6, 0.6, 8 * 3600);
  ASSERT_TRUE(xar_.CancelRide(ride).ok());
  EXPECT_EQ(xar_.ride_index().RegistrationOf(ride), nullptr);
  EXPECT_EQ(xar_.NumActiveRides(), 0u);
}

}  // namespace
}  // namespace xar
