// Differential suite for the pluggable MatchIndex layer (ISSUE 8): both
// backends replay the same TripGenerator workloads, every booking respects
// the paper's 4-epsilon detour guarantee regardless of backend, and the
// default kCluster backend is bit-equal to a reference reimplementation of
// the pre-refactor two-step search (paper Section VII) — including across a
// mid-replay RefreshDiscretization epoch swap.

#include "match/match_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/oracle.h"
#include "match/ride_index.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

struct Workload {
  std::vector<RideOffer> offers;
  std::vector<RideRequest> requests;
};

Workload MakeWorkload(std::uint64_t seed, std::size_t num_trips = 260) {
  WorkloadOptions wopt;
  wopt.num_trips = num_trips;
  wopt.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
  Workload w;
  for (const TaxiTrip& t : GenerateTrips(testing::SharedCity().graph.bounds(),
                                         wopt)) {
    if (t.id.value() % 3 == 0) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      w.offers.push_back(offer);
    } else {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 1200;
      w.requests.push_back(req);
    }
  }
  return w;
}

/// Reference reimplementation of the seed two-step search (the pre-refactor
/// XarSystem::SearchTopK body, per_ride = 1 path) against the system's
/// public introspection surface: walkable-cluster prefix scan, per-cluster
/// ETA range probes, merge-join intersection on sorted ride ids, then the
/// walking/detour threshold checks. Any divergence between this and
/// Search() is a behavior change in the extracted kCluster backend.
struct RefSide {
  double walk_m;
  double eta_s;
  ClusterId cluster;
  LandmarkId landmark;
};

void RefCollectSide(const XarSystem& xar, const RegionIndex& region,
                    const LatLng& location, double walk_limit_m,
                    double eta_begin, double eta_end,
                    std::vector<std::pair<RideId, RefSide>>* out) {
  GridId grid = region.GridOfPoint(location);
  for (const WalkableCluster& wc : region.WalkableClustersOf(grid)) {
    if (wc.walk_m > walk_limit_m) break;
    const ClusterRideList& list = xar.ride_index().ListOf(wc.cluster);
    for (const PotentialRide& pr : list.EtaRange(eta_begin, eta_end)) {
      out->emplace_back(pr.ride, RefSide{wc.walk_m, pr.eta_s, wc.cluster,
                                         wc.nearest_landmark});
    }
  }
  std::sort(out->begin(), out->end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.walk_m != b.second.walk_m)
      return a.second.walk_m < b.second.walk_m;
    return a.second.eta_s < b.second.eta_s;
  });
  out->erase(std::unique(out->begin(), out->end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             out->end());
}

std::vector<RideMatch> RefSearch(const XarSystem& xar,
                                 const RideRequest& request) {
  const XarOptions& opt = xar.options();
  const double walk_limit = request.walk_limit_m >= 0
                                ? request.walk_limit_m
                                : opt.default_walk_limit_m;
  std::shared_ptr<const RegionSnapshot> pinned = xar.snapshot();
  const RegionIndex& region = *pinned->index;

  std::vector<std::pair<RideId, RefSide>> source_side;
  RefCollectSide(xar, region, request.source, walk_limit,
                 request.earliest_departure_s - opt.eta_window_slack_s,
                 request.latest_departure_s + opt.eta_window_slack_s,
                 &source_side);
  std::vector<std::pair<RideId, RefSide>> dest_side;
  RefCollectSide(xar, region, request.destination, walk_limit,
                 request.earliest_departure_s,
                 request.latest_departure_s + opt.max_onboard_s, &dest_side);

  std::vector<RideMatch> matches;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < source_side.size() && j < dest_side.size()) {
    if (source_side[i].first < dest_side[j].first) {
      ++i;
      continue;
    }
    if (dest_side[j].first < source_side[i].first) {
      ++j;
      continue;
    }
    const RideId ride_id = source_side[i].first;
    const RefSide& s = source_side[i].second;
    const RefSide& d = dest_side[j].second;
    ++i;
    ++j;
    const Ride* ride = xar.GetRide(ride_id);
    if (ride == nullptr || !ride->active ||
        ride->seats_available < request.seats) {
      continue;
    }
    if (s.cluster == d.cluster || s.eta_s > d.eta_s) continue;
    if (s.walk_m + d.walk_m > walk_limit) continue;
    std::size_t seg_s = 0;
    std::size_t seg_d = 0;
    double joint_detour = 0.0;
    if (!xar.ride_index().ChooseInsertionSegments(*ride, s.cluster, s.landmark,
                                                  d.cluster, d.landmark,
                                                  &seg_s, &seg_d,
                                                  &joint_detour)) {
      continue;
    }
    if (joint_detour > ride->RemainingDetourBudget()) continue;

    RideMatch m;
    m.ride = ride_id;
    m.walk_source_m = s.walk_m;
    m.walk_dest_m = d.walk_m;
    m.eta_source_s = s.eta_s;
    m.eta_dest_s = d.eta_s;
    m.detour_estimate_m = joint_detour;
    m.source_cluster = s.cluster;
    m.dest_cluster = d.cluster;
    m.pickup_landmark = s.landmark;
    m.dropoff_landmark = d.landmark;
    m.epoch = pinned->epoch;
    matches.push_back(m);
  }
  std::sort(matches.begin(), matches.end(),
            [](const RideMatch& a, const RideMatch& b) {
              if (a.TotalWalkM() != b.TotalWalkM())
                return a.TotalWalkM() < b.TotalWalkM();
              return a.ride < b.ride;
            });
  return matches;
}

void ExpectBitEqual(const std::vector<RideMatch>& ref,
                    const std::vector<RideMatch>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "rank " << i);
    EXPECT_EQ(ref[i].ride, got[i].ride);
    EXPECT_EQ(ref[i].walk_source_m, got[i].walk_source_m);
    EXPECT_EQ(ref[i].walk_dest_m, got[i].walk_dest_m);
    EXPECT_EQ(ref[i].eta_source_s, got[i].eta_source_s);
    EXPECT_EQ(ref[i].eta_dest_s, got[i].eta_dest_s);
    EXPECT_EQ(ref[i].detour_estimate_m, got[i].detour_estimate_m);
    EXPECT_EQ(ref[i].source_cluster, got[i].source_cluster);
    EXPECT_EQ(ref[i].dest_cluster, got[i].dest_cluster);
    EXPECT_EQ(ref[i].pickup_landmark, got[i].pickup_landmark);
    EXPECT_EQ(ref[i].dropoff_landmark, got[i].dropoff_landmark);
    EXPECT_EQ(ref[i].epoch, got[i].epoch);
  }
}

// --- FromString (satellite: kInvalidArgument on unknown names) ------------

TEST(MatchIndexFromStringTest, ParsesKnownNames) {
  Result<MatchIndexKind> cluster = MatchIndexFromString("cluster");
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(cluster.value(), MatchIndexKind::kCluster);
  Result<MatchIndexKind> hash = MatchIndexFromString("st_hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash.value(), MatchIndexKind::kSpatioTemporalHash);
  EXPECT_EQ(ParseMatchIndex("cluster"), MatchIndexKind::kCluster);
  EXPECT_EQ(ParseMatchIndex("st_hash"), MatchIndexKind::kSpatioTemporalHash);
  EXPECT_EQ(ParseMatchIndex("bogus"), std::nullopt);
}

TEST(MatchIndexFromStringTest, UnknownNameIsInvalidArgument) {
  Result<MatchIndexKind> r = MatchIndexFromString("quadtree");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The message names the offender and the valid set, like
  // RoutingBackendFromString.
  EXPECT_NE(r.status().ToString().find("quadtree"), std::string::npos);
  EXPECT_NE(r.status().ToString().find("cluster"), std::string::npos);
}

TEST(MatchIndexFromStringTest, NameRoundTrips) {
  for (MatchIndexKind kind :
       {MatchIndexKind::kCluster, MatchIndexKind::kSpatioTemporalHash}) {
    EXPECT_EQ(ParseMatchIndex(MatchIndexName(kind)), kind);
  }
}

// --- kCluster bit-equality against the seed search path -------------------

TEST(MatchIndexDifferentialTest, ClusterBackendBitEqualToSeedSearch) {
  testing::TestCity& city = testing::SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  ASSERT_EQ(xar.match_index().kind(), MatchIndexKind::kCluster);

  Workload w = MakeWorkload(11);
  ASSERT_FALSE(w.offers.empty());
  for (const RideOffer& offer : w.offers) {
    ASSERT_TRUE(xar.CreateRide(offer).ok());
  }

  std::size_t nonempty = 0;
  std::size_t booked = 0;
  for (std::size_t r = 0; r < w.requests.size(); ++r) {
    // Epoch swap mid-replay: the refreshed discretization re-homes every
    // live ride, and the extracted backend must keep tracking the seed
    // search bit for bit on the new epoch too.
    if (r == w.requests.size() / 2) {
      RefreshStats stats = xar.RefreshDiscretization();
      EXPECT_EQ(stats.epoch, 1u);
      EXPECT_EQ(xar.epoch(), 1u);
    }
    const RideRequest& req = w.requests[r];
    SCOPED_TRACE(::testing::Message() << "request " << req.id.value());
    std::vector<RideMatch> got = xar.Search(req);
    std::vector<RideMatch> ref = RefSearch(xar, req);
    ExpectBitEqual(ref, got);
    if (got.empty()) continue;
    ++nonempty;
    // Booking mutates ride state (seats, detour budget, index entries);
    // keep booking through the replay so the two paths are compared on
    // evolving state, not a static index.
    if (xar.Book(got.front().ride, req, got.front()).ok()) ++booked;
  }
  EXPECT_GT(nonempty, 0u) << "workload produced no matches";
  EXPECT_GT(booked, 0u) << "workload produced no bookings";
}

// --- Both backends: same workload, 4-epsilon per backend ------------------

class MatchIndexBackendTest
    : public ::testing::TestWithParam<MatchIndexKind> {};

TEST_P(MatchIndexBackendTest, WorkloadReplayRespectsDetourGuarantee) {
  testing::TestCity& city = testing::SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions options;
  options.match_index = GetParam();
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle, options);
  EXPECT_EQ(xar.match_index().kind(), GetParam());

  Workload w = MakeWorkload(23);
  for (const RideOffer& offer : w.offers) {
    ASSERT_TRUE(xar.CreateRide(offer).ok());
  }

  const double slack = 4 * city.region->epsilon() +
                       2 * city.region->options().max_drive_to_landmark_m;
  std::size_t booked = 0;
  for (const RideRequest& req : w.requests) {
    SCOPED_TRACE(::testing::Message() << "request " << req.id.value());
    std::vector<RideMatch> matches = xar.Search(req);
    if (matches.empty()) continue;
    Result<BookingRecord> booking =
        xar.Book(matches.front().ride, req, matches.front());
    if (!booking.ok()) continue;
    ++booked;
    // Theorem 6: booking-time exact pricing bounds the actual detour by the
    // cluster-level estimate plus the 4-epsilon discretization slack —
    // backend-independent, because Book recomputes the splice exactly.
    EXPECT_LE(booking->actual_detour_m,
              booking->estimated_detour_m + slack + 1e-6);
  }
  EXPECT_GT(booked, 0u) << "workload produced no bookings";

  // The backend's stats surface ticked along the way.
  MatchIndexStats stats = xar.match_index().stats();
  EXPECT_STREQ(stats.backend, MatchIndexName(GetParam()));
  EXPECT_EQ(stats.counters.inserts, w.offers.size());
  EXPECT_EQ(stats.counters.searches, w.requests.size());
  EXPECT_GT(stats.counters.candidates, 0u);
  EXPECT_GT(stats.registered_rides, 0u);
  EXPECT_GT(stats.bytes, 0u);

  // And renders into the registered "match" section shape.
  StatsSection section = MatchStatsSection(stats);
  EXPECT_EQ(section.name, "match");
  ASSERT_EQ(section.rows.size(), 1u);
  EXPECT_EQ(section.rows[0].front().name, "backend");
}

TEST_P(MatchIndexBackendTest, SurvivesEpochSwapAndAdvance) {
  testing::TestCity& city = testing::SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions options;
  options.match_index = GetParam();
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle, options);

  Workload w = MakeWorkload(5, /*num_trips=*/120);
  for (const RideOffer& offer : w.offers) {
    ASSERT_TRUE(xar.CreateRide(offer).ok());
  }
  std::size_t before = 0;
  for (const RideRequest& req : w.requests) before += xar.Search(req).size();
  EXPECT_GT(before, 0u);

  // Refresh rebinds the backend to the new snapshot and re-homes rides; the
  // same requests must still match (same graph, same discretization input).
  xar.RefreshDiscretization();
  std::size_t after = 0;
  for (const RideRequest& req : w.requests) after += xar.Search(req).size();
  EXPECT_EQ(before, after);

  // Tracking: advancing past the whole day retires every ride and empties
  // the index.
  xar.AdvanceTime(48 * 3600.0);
  EXPECT_EQ(xar.NumActiveRides(), 0u);
  EXPECT_EQ(xar.match_index().NumRegisteredRides(), 0u);
  for (const RideRequest& req : w.requests) {
    EXPECT_TRUE(xar.Search(req).empty());
  }
  MatchIndexStats stats = xar.match_index().stats();
  EXPECT_GT(stats.counters.empty_searches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, MatchIndexBackendTest,
    ::testing::Values(MatchIndexKind::kCluster,
                      MatchIndexKind::kSpatioTemporalHash),
    [](const ::testing::TestParamInfo<MatchIndexKind>& info) {
      return std::string(MatchIndexName(info.param)) == "st_hash"
                 ? "StHash"
                 : "Cluster";
    });

// --- St-hash candidate soundness ------------------------------------------

// The hash backend generates a conservative subset: every candidate it
// emits must also pass the exact feasibility gates (walk limit, ETA order,
// budget), so Book accepts or rejects them for the same reasons as cluster
// candidates. Subset-ness itself isn't required rank-for-rank — but every
// st_hash match must be bookable-or-rejectable under the same rules.
TEST(StHashMatchIndexTest, CandidatesPassFeasibilityGates) {
  testing::TestCity& city = testing::SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions options;
  options.match_index = MatchIndexKind::kSpatioTemporalHash;
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle, options);

  Workload w = MakeWorkload(31, /*num_trips=*/200);
  for (const RideOffer& offer : w.offers) {
    ASSERT_TRUE(xar.CreateRide(offer).ok());
  }
  std::size_t total = 0;
  for (const RideRequest& req : w.requests) {
    const double walk_limit = xar.options().default_walk_limit_m;
    for (const RideMatch& m : xar.Search(req)) {
      ++total;
      EXPECT_LE(m.TotalWalkM(), walk_limit + 1e-9);
      EXPECT_LE(m.eta_source_s, m.eta_dest_s);
      EXPECT_NE(m.source_cluster, m.dest_cluster);
      const Ride* ride = xar.GetRide(m.ride);
      ASSERT_NE(ride, nullptr);
      EXPECT_TRUE(ride->active);
      EXPECT_LE(m.detour_estimate_m,
                ride->RemainingDetourBudget() + 1e-9);
    }
  }
  EXPECT_GT(total, 0u) << "st_hash produced no candidates at all";
}

}  // namespace
}  // namespace xar
