#include <gtest/gtest.h>

#include <cmath>

#include "mmtp/integration.h"
#include "mmtp/trip_planner.h"
#include "tests/test_helpers.h"
#include "transit/network_generator.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class MmtpTest : public ::testing::Test {
 protected:
  MmtpTest()
      : city_(SharedCity()),
        timetable_(GenerateTransitNetwork(city_.graph.bounds(), {})),
        planner_(timetable_),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {}

  /// Seeds ride-share supply around the given hour.
  void SeedSupply(std::size_t count, double hour) {
    WorkloadOptions opt;
    opt.num_trips = count;
    opt.seed = 77;
    for (TaxiTrip t : GenerateTrips(city_.graph.bounds(), opt)) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = hour * 3600 + std::fmod(t.pickup_time_s, 1800.0);
      (void)xar_.CreateRide(offer);
    }
  }

  LatLng Frac(double fy, double fx) const {
    const BoundingBox& b = city_.graph.bounds();
    return {b.min_lat + fy * (b.max_lat - b.min_lat),
            b.min_lng + fx * (b.max_lng - b.min_lng)};
  }

  TestCity& city_;
  Timetable timetable_;
  TripPlanner planner_;
  XarSystem xar_;
};

TEST_F(MmtpTest, ShortTripsWalk) {
  LatLng a = Frac(0.5, 0.5);
  LatLng b = Frac(0.52, 0.5);  // a couple hundred meters
  Journey j = planner_.PlanTrip(a, b, 9 * 3600);
  ASSERT_TRUE(j.feasible);
  EXPECT_EQ(j.legs.size(), 1u);
  EXPECT_EQ(j.legs[0].mode, LegMode::kWalk);
}

TEST_F(MmtpTest, LongTripsUseTransit) {
  Journey j = planner_.PlanTrip(Frac(0.1, 0.1), Frac(0.9, 0.9), 9 * 3600);
  ASSERT_TRUE(j.feasible);
  bool has_transit = false;
  for (const JourneyLeg& leg : j.legs) {
    has_transit |= leg.mode == LegMode::kTransit;
  }
  EXPECT_TRUE(has_transit);
  // Legs chain in time.
  for (std::size_t i = 1; i < j.legs.size(); ++i) {
    EXPECT_GE(j.legs[i].start_s, j.legs[i - 1].arrival_s - 1e-6);
  }
}

TEST_F(MmtpTest, WalkOnlyAlwaysFeasible) {
  Journey j = planner_.WalkOnly(Frac(0.1, 0.1), Frac(0.9, 0.9), 9 * 3600);
  EXPECT_TRUE(j.feasible);
  EXPECT_EQ(j.legs.size(), 1u);
  EXPECT_GT(j.WalkMeters(), 0.0);
}

TEST_F(MmtpTest, AiderLeavesComfortablePlansAlone) {
  SeedSupply(300, 9.0);
  Journey plan = planner_.PlanTrip(Frac(0.2, 0.2), Frac(0.8, 0.8), 9 * 3600);
  ASSERT_TRUE(plan.feasible);
  IntegrationOptions loose;
  loose.infeasible_walk_m = 1e9;  // nothing is infeasible
  loose.infeasible_wait_s = 1e9;
  XarMmtpIntegration integration(planner_, xar_, loose);
  IntegrationResult result = integration.Aid(plan, RequestId(1));
  EXPECT_EQ(result.segments_probed, 0u);
  EXPECT_EQ(result.segments_replaced, 0u);
  EXPECT_FALSE(result.improved);
}

TEST_F(MmtpTest, AiderProbesInfeasibleSegments) {
  SeedSupply(400, 9.0);
  Journey plan = planner_.PlanTrip(Frac(0.15, 0.15), Frac(0.85, 0.85),
                                   9 * 3600);
  ASSERT_TRUE(plan.feasible);
  IntegrationOptions strict;
  strict.infeasible_walk_m = 1.0;  // every walking leg is "infeasible"
  strict.book_matches = false;
  XarMmtpIntegration integration(planner_, xar_, strict);
  IntegrationResult result = integration.Aid(plan, RequestId(2));
  EXPECT_GT(result.segments_probed, 0u);
  // Replacement legs, when accepted, never arrive later than the original.
  if (result.improved) {
    EXPECT_LE(result.journey.ArrivalS(), plan.ArrivalS() + 1e-6);
  }
}

TEST_F(MmtpTest, AiderBookingConsumesSeats) {
  SeedSupply(400, 9.0);
  Journey plan = planner_.PlanTrip(Frac(0.15, 0.15), Frac(0.85, 0.85),
                                   9 * 3600);
  ASSERT_TRUE(plan.feasible);
  IntegrationOptions strict;
  strict.infeasible_walk_m = 1.0;
  strict.book_matches = true;
  XarMmtpIntegration integration(planner_, xar_, strict);
  std::size_t bookings_before = xar_.bookings().size();
  IntegrationResult result = integration.Aid(plan, RequestId(3));
  EXPECT_EQ(xar_.bookings().size(),
            bookings_before + result.segments_replaced);
}

TEST_F(MmtpTest, EnhancerProbesNonAdjacentPairCombinations) {
  SeedSupply(200, 9.0);
  Journey plan = planner_.PlanTrip(Frac(0.1, 0.1), Frac(0.9, 0.9), 9 * 3600);
  ASSERT_TRUE(plan.feasible);
  std::size_t legs = plan.legs.size();
  if (legs < 2) GTEST_SKIP() << "plan degenerated to a single leg";
  IntegrationOptions opt;
  opt.book_matches = false;
  XarMmtpIntegration integration(planner_, xar_, opt);
  IntegrationResult result = integration.Enhance(plan, RequestId(4));
  std::size_t k = legs - 1;  // intermediate hops
  if (k <= opt.max_hops_for_all_pairs) {
    // (k+1 choose 2) non-adjacent pairs (paper Section IX-B).
    EXPECT_EQ(result.segments_probed, (k + 1) * k / 2);
  } else {
    EXPECT_EQ(result.segments_probed, 2 * k + 1);
  }
}

TEST_F(MmtpTest, EnhancerOnlyImproves) {
  SeedSupply(500, 9.0);
  Journey plan = planner_.PlanTrip(Frac(0.1, 0.1), Frac(0.9, 0.9), 9 * 3600);
  ASSERT_TRUE(plan.feasible);
  IntegrationOptions opt;
  opt.book_matches = false;
  XarMmtpIntegration integration(planner_, xar_, opt);
  IntegrationResult result = integration.Enhance(plan, RequestId(5));
  if (result.improved) {
    bool fewer_hops = result.journey.Hops() < plan.Hops();
    bool earlier = result.journey.ArrivalS() < plan.ArrivalS() + 1e-6;
    EXPECT_TRUE(fewer_hops || earlier);
  } else {
    EXPECT_EQ(result.journey.Hops(), plan.Hops());
  }
}

TEST_F(MmtpTest, EnhancerOnSingleLegPlanIsNoop) {
  Journey walk = planner_.WalkOnly(Frac(0.5, 0.5), Frac(0.52, 0.5), 9 * 3600);
  XarMmtpIntegration integration(planner_, xar_);
  IntegrationResult result = integration.Enhance(walk, RequestId(6));
  EXPECT_EQ(result.segments_probed, 0u);
  EXPECT_FALSE(result.improved);
}

}  // namespace
}  // namespace xar
