// Cancellation / no-show racing RefreshDiscretization: booker threads
// book-then-unwind (CancelBooking or ReportNoShow) against live rides while
// a refresher thread rebuilds and swaps the discretization. Afterwards the
// seat ledger must be exact: every booking that was not successfully
// unwound holds exactly one seat, everything else is back in the pool.
// Run under -DXAR_SANITIZE=thread this is the data-race detector for the
// unwinding paths (ctest -L stress / -L sim).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Trips(const TestCity& city, std::size_t n,
                            std::uint64_t seed) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

TEST(NoShowStressTest, UnwindingRacesRefreshDiscretization) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          /*num_shards=*/4);

  // Ride supply created up front so the bookers find matches immediately.
  for (const TaxiTrip& t : Trips(city, 250, 80)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }

  // Ledger of bookings that were made and NOT successfully unwound, kept by
  // the bookers themselves.
  std::mutex ledger_mutex;
  std::unordered_map<RideId, int> seats_held;
  std::atomic<std::size_t> bookings{0};
  std::atomic<std::size_t> unwound{0};

  constexpr std::size_t kRefreshes = 4;
  std::vector<std::uint64_t> observed_epochs;

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (std::size_t r = 0; r < kRefreshes; ++r) {
      RefreshStats stats = xar.RefreshDiscretization();
      observed_epochs.push_back(stats.epoch);
    }
  });
  // Booker/unwinder threads: book, then immediately cancel (even ids) or
  // no-show (odd ids). Either unwinding may race a refresh swap; it must
  // return a clean status either way, never corrupt seat accounting.
  for (int b = 0; b < 3; ++b) {
    threads.emplace_back([&, b] {
      std::vector<TaxiTrip> trips =
          Trips(city, 120, 300 + static_cast<std::uint64_t>(b));
      std::uint32_t next_id = 10000 + 100000 * static_cast<std::uint32_t>(b);
      for (const TaxiTrip& t : trips) {
        RideRequest req;
        req.id = RequestId(next_id++);
        req.source = t.pickup;
        req.destination = t.dropoff;
        req.earliest_departure_s = t.pickup_time_s;
        req.latest_departure_s = t.pickup_time_s + 900;
        Result<BookingRecord> booked = xar.SearchAndBook(req);
        if (!booked.ok()) continue;
        bookings.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(ledger_mutex);
          ++seats_held[booked->ride];
        }
        const bool no_show = (req.id.value() % 2) != 0;
        Status status = no_show ? xar.ReportNoShow(booked->ride, req.id)
                                : xar.CancelBooking(booked->ride, req.id);
        if (status.ok()) {
          unwound.fetch_add(1);
          std::lock_guard<std::mutex> lock(ledger_mutex);
          if (--seats_held[booked->ride] == 0) {
            seats_held.erase(booked->ride);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_GT(bookings.load(), 0u);
  ASSERT_GT(unwound.load(), 0u);

  // Epochs observed by the refresher are strictly monotone.
  for (std::size_t i = 1; i < observed_epochs.size(); ++i) {
    EXPECT_LT(observed_epochs[i - 1], observed_epochs[i]);
  }

  // Seat accounting is exact after the dust settles: each ride's available
  // seats are its total minus the bookings still held on it.
  for (const auto& [ride_id, held] : seats_held) {
    Result<Ride> ride = xar.GetRide(ride_id);
    ASSERT_TRUE(ride.ok());
    EXPECT_EQ(ride.value().seats_available + held, ride.value().seats_total)
        << "ride " << ride_id.value();
  }
}

}  // namespace
}  // namespace xar
