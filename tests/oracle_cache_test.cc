// Unit + differential suite for the oracle distance caches (ISSUE 5).
//
// Unit half: the lock-free CLOCK cache's slot protocol — CAS claim,
// occupancy bound, second-chance eviction, duplicate handling — exercised
// deterministically through a capacity-8 table (its probe window covers the
// whole table, so eviction pressure is forced without hash engineering).
//
// Differential half: a lossy cache is only safe if it can never change an
// answer. Cached vs uncached, and kClock vs kStripedLru, must return
// bit-identical distances across all three metrics — including after a
// RefreshDiscretization epoch swap onto a perturbed graph.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/oracle_cache.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using InsertOutcome = OracleClockCache::InsertOutcome;

OracleCacheKey Key(std::uint32_t from, std::uint32_t to,
                   Metric metric = Metric::kDriveDistance) {
  return MakeOracleCacheKey(NodeId(from), NodeId(to), metric);
}

TEST(OracleClockCacheTest, LookupOnEmptyCacheMisses) {
  OracleClockCache cache(64);
  EXPECT_FALSE(cache.Lookup(Key(1, 2)).has_value());
  EXPECT_EQ(cache.occupied(), 0u);
}

TEST(OracleClockCacheTest, InsertThenLookupIsBitIdentical) {
  OracleClockCache cache(64);
  const double values[] = {0.0, -0.0, 1234.5678,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  std::uint32_t to = 0;
  for (double v : values) {
    OracleCacheKey key = Key(7, ++to);
    EXPECT_EQ(cache.Insert(key, v), InsertOutcome::kInserted);
    std::optional<double> got = cache.Lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(*got),
              std::bit_cast<std::uint64_t>(v));
  }
  EXPECT_EQ(cache.occupied(), std::size(values));
  EXPECT_EQ(cache.counters().insertions, std::size(values));
}

TEST(OracleClockCacheTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(OracleClockCache(10).capacity(), 16u);
  EXPECT_EQ(OracleClockCache(64).capacity(), 64u);
  // Tiny capacities clamp to the minimum table (and the probe window never
  // exceeds the table).
  OracleClockCache tiny(1);
  EXPECT_EQ(tiny.capacity(), 8u);
  EXPECT_EQ(tiny.probe_window(), 8u);
}

TEST(OracleClockCacheTest, DuplicateInsertKeepsFirstEntryAndCountsRace) {
  OracleClockCache cache(64);
  OracleCacheKey key = Key(3, 9, Metric::kWalkDistance);
  EXPECT_EQ(cache.Insert(key, 100.0), InsertOutcome::kInserted);
  // In production the duplicate is a racing thread that computed the same
  // (from, to, metric) first — values are identical, so keeping the first
  // entry is correct. The unit test uses a different value to prove it is
  // the *first* write that survives.
  EXPECT_EQ(cache.Insert(key, 200.0), InsertOutcome::kAlreadyPresent);
  EXPECT_EQ(*cache.Lookup(key), 100.0);
  EXPECT_EQ(cache.occupied(), 1u);
  EXPECT_EQ(cache.counters().races, 1u);
}

TEST(OracleClockCacheTest, MetricAndDirectionKeySeparation) {
  OracleClockCache cache(64);
  ASSERT_EQ(cache.Insert(Key(1, 2, Metric::kDriveDistance), 10.0),
            InsertOutcome::kInserted);
  ASSERT_EQ(cache.Insert(Key(1, 2, Metric::kDriveTime), 20.0),
            InsertOutcome::kInserted);
  ASSERT_EQ(cache.Insert(Key(2, 1, Metric::kDriveDistance), 30.0),
            InsertOutcome::kInserted);
  EXPECT_EQ(*cache.Lookup(Key(1, 2, Metric::kDriveDistance)), 10.0);
  EXPECT_EQ(*cache.Lookup(Key(1, 2, Metric::kDriveTime)), 20.0);
  EXPECT_EQ(*cache.Lookup(Key(2, 1, Metric::kDriveDistance)), 30.0);
  EXPECT_FALSE(cache.Lookup(Key(2, 1, Metric::kDriveTime)).has_value());
}

// Capacity 8 => the probe window is the whole table, so 40 distinct keys
// force CLOCK eviction. Occupancy must stay bounded, single-threaded
// insertion can never drop, and every surviving entry answers exactly.
TEST(OracleClockCacheTest, EvictionBoundsOccupancy) {
  OracleClockCache cache(8);
  ASSERT_EQ(cache.capacity(), 8u);
  constexpr std::uint32_t kKeys = 40;
  auto value_of = [](std::uint32_t i) { return 1000.0 + i; };
  std::size_t evicted_outcomes = 0;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    InsertOutcome outcome = cache.Insert(Key(100, i), value_of(i));
    ASSERT_NE(outcome, InsertOutcome::kDropped)
        << "single-threaded insertion must always find a victim";
    if (outcome == InsertOutcome::kEvicted) ++evicted_outcomes;
  }
  EXPECT_EQ(cache.occupied(), 8u);
  OracleCacheCounters c = cache.counters();
  EXPECT_EQ(c.insertions, kKeys);
  EXPECT_EQ(c.evictions, kKeys - 8);
  EXPECT_EQ(c.evictions, evicted_outcomes);
  EXPECT_EQ(c.drops, 0u);
  // Whatever survived answers bit-identically; the rest miss cleanly.
  std::size_t hits = 0;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    if (std::optional<double> got = cache.Lookup(Key(100, i))) {
      ++hits;
      EXPECT_EQ(*got, value_of(i));
    }
  }
  EXPECT_EQ(hits, 8u);
}

// The reference bit is a real second chance: a slot touched by a hit
// survives the next eviction sweep whenever any unreferenced slot exists.
TEST(OracleClockCacheTest, ReferencedSlotSurvivesEvictionSweep) {
  OracleClockCache cache(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_EQ(cache.Insert(Key(200, i), 1.0 * i), InsertOutcome::kInserted);
  }
  // Evict once: the sweep clears every fresh reference bit, then claims a
  // victim — leaving most slots unreferenced.
  ASSERT_EQ(cache.Insert(Key(200, 100), -1.0), InsertOutcome::kEvicted);
  // Find a survivor among the originals and reference it via a hit.
  std::optional<std::uint32_t> survivor;
  for (std::uint32_t i = 0; i < 8 && !survivor; ++i) {
    if (cache.Lookup(Key(200, i)).has_value()) survivor = i;
  }
  ASSERT_TRUE(survivor.has_value());
  // Two more evicting inserts: with unreferenced slots available, the
  // referenced survivor must never be the victim.
  ASSERT_EQ(cache.Insert(Key(200, 101), -2.0), InsertOutcome::kEvicted);
  ASSERT_TRUE(cache.Lookup(Key(200, *survivor)).has_value());  // re-reference
  ASSERT_EQ(cache.Insert(Key(200, 102), -3.0), InsertOutcome::kEvicted);
  EXPECT_TRUE(cache.Lookup(Key(200, *survivor)).has_value());
  EXPECT_EQ(cache.occupied(), 8u);
}

// ---------------------------------------------------------------------------
// Differential suite: the cache may only ever change *when* a distance is
// computed, never *what* is returned.

RoadGraph DifferentialCity() {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  return GenerateCity(opt);
}

std::vector<std::pair<NodeId, NodeId>> RandomPairs(const RoadGraph& g,
                                                   std::size_t count,
                                                   std::uint64_t seed) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(g.NumNodes()))),
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(g.NumNodes()))));
  }
  return pairs;
}

/// Queries every pair under every metric — twice in immediate succession on
/// `lhs`, so a cached oracle serves the repeat from its cache before
/// eviction pressure can clear it — and asserts `lhs` and `rhs` agree
/// bit-for-bit, cold and cached alike.
void ExpectBitIdenticalDistances(DistanceOracle& lhs, DistanceOracle& rhs,
                                 const std::vector<std::pair<NodeId, NodeId>>&
                                     pairs) {
  for (const auto& [from, to] : pairs) {
    const double cold[3] = {lhs.DriveDistance(from, to),
                            lhs.DriveTime(from, to),
                            lhs.WalkDistance(from, to)};
    const double warm[3] = {lhs.DriveDistance(from, to),
                            lhs.DriveTime(from, to),
                            lhs.WalkDistance(from, to)};
    const double b[3] = {rhs.DriveDistance(from, to),
                         rhs.DriveTime(from, to),
                         rhs.WalkDistance(from, to)};
    for (int m = 0; m < 3; ++m) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(cold[m]),
                std::bit_cast<std::uint64_t>(warm[m]))
          << "cached re-query diverged; metric " << m << " from "
          << from.value() << " to " << to.value();
      ASSERT_EQ(std::bit_cast<std::uint64_t>(cold[m]),
                std::bit_cast<std::uint64_t>(b[m]))
          << "metric " << m << " from " << from.value() << " to "
          << to.value();
    }
  }
}

TEST(OracleCacheDifferentialTest, ClockCachedVsUncachedBitIdentical) {
  RoadGraph g = DifferentialCity();
  // Tiny capacity keeps the CLOCK cache under eviction pressure throughout.
  GraphOracle cached(g, /*cache_capacity=*/64, RoutingBackendKind::kAStar, {},
                     OracleCachePolicy::kClock);
  GraphOracle uncached(g, /*cache_capacity=*/0, RoutingBackendKind::kAStar);
  ExpectBitIdenticalDistances(cached, uncached, RandomPairs(g, 250, 7));
  EXPECT_GT(cached.cache_hit_count(), 0u);
}

TEST(OracleCacheDifferentialTest, ClockVsStripedLruBitIdentical) {
  RoadGraph g = DifferentialCity();
  GraphOracle clock(g, /*cache_capacity=*/256, RoutingBackendKind::kAStar, {},
                    OracleCachePolicy::kClock);
  GraphOracle lru(g, /*cache_capacity=*/256, RoutingBackendKind::kAStar, {},
                  OracleCachePolicy::kStripedLru);
  ExpectBitIdenticalDistances(clock, lru, RandomPairs(g, 250, 11));
  EXPECT_GT(clock.cache_hit_count(), 0u);
  EXPECT_GT(lru.cache_hit_count(), 0u);
  EXPECT_STREQ(clock.cache_policy_name(), "clock");
  EXPECT_STREQ(lru.cache_policy_name(), "striped_lru");
}

/// Replays `requests` as Search + Book-first-match on both systems and
/// asserts identical match lists and bit-identical booking records.
void ExpectIdenticalReplay(XarSystem& a, XarSystem& b,
                           const std::vector<RideRequest>& requests) {
  std::size_t bookings = 0;
  for (const RideRequest& req : requests) {
    std::vector<RideMatch> ma = a.Search(req);
    std::vector<RideMatch> mb = b.Search(req);
    ASSERT_EQ(ma.size(), mb.size()) << "request " << req.id.value();
    for (std::size_t i = 0; i < ma.size(); ++i) {
      ASSERT_EQ(ma[i].ride, mb[i].ride);
      ASSERT_EQ(ma[i].detour_estimate_m, mb[i].detour_estimate_m);
    }
    if (ma.empty()) continue;
    Result<BookingRecord> ba = a.Book(ma.front().ride, req, ma.front());
    Result<BookingRecord> bb = b.Book(mb.front().ride, req, mb.front());
    ASSERT_EQ(ba.ok(), bb.ok()) << "request " << req.id.value();
    if (!ba.ok()) continue;
    ++bookings;
    EXPECT_EQ(ba->actual_detour_m, bb->actual_detour_m);
    EXPECT_EQ(ba->estimated_detour_m, bb->estimated_detour_m);
    EXPECT_EQ(ba->pickup_eta_s, bb->pickup_eta_s);
    EXPECT_EQ(ba->dropoff_eta_s, bb->dropoff_eta_s);
    EXPECT_EQ(ba->walk_m, bb->walk_m);
  }
  EXPECT_GT(bookings, 0u);
}

// Full-system differential across the cache policies, through a
// RefreshDiscretization epoch swap onto a perturbed graph: the lossy cache
// must never change a match, a booking or a post-refresh route.
TEST(OracleCacheDifferentialTest, PoliciesAgreeThroughRefreshEpochSwap) {
  testing::TestCity& city = testing::SharedCity();
  GraphOracle clock_oracle(city.graph, 1 << 12, RoutingBackendKind::kAStar,
                           {}, OracleCachePolicy::kClock);
  GraphOracle lru_oracle(city.graph, 1 << 12, RoutingBackendKind::kAStar, {},
                         OracleCachePolicy::kStripedLru);
  XarSystem clock_sys(city.graph, *city.spatial, *city.region, clock_oracle);
  XarSystem lru_sys(city.graph, *city.spatial, *city.region, lru_oracle);

  WorkloadOptions wopt;
  wopt.num_trips = 500;
  wopt.seed = 77;
  std::vector<RideRequest> requests;
  for (const TaxiTrip& t : GenerateTrips(city.graph.bounds(), wopt)) {
    if (t.id.value() % 3 == 0) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      Result<RideId> ra = clock_sys.CreateRide(offer);
      Result<RideId> rb = lru_sys.CreateRide(offer);
      ASSERT_EQ(ra.ok(), rb.ok());
    } else {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 900;
      requests.push_back(req);
    }
  }
  std::vector<RideRequest> before(requests.begin(),
                                  requests.begin() + requests.size() / 2);
  std::vector<RideRequest> after(requests.begin() + requests.size() / 2,
                                 requests.end());
  ExpectIdenticalReplay(clock_sys, lru_sys, before);

  // Swap epochs onto a perturbed metric, each system refreshing onto a
  // fresh oracle of its own policy.
  RoadGraph perturbed = PerturbEdgeWeights(city.graph, 0.25, 4242);
  GraphOracle clock_oracle2(perturbed, 1 << 12, RoutingBackendKind::kAStar,
                            {}, OracleCachePolicy::kClock);
  GraphOracle lru_oracle2(perturbed, 1 << 12, RoutingBackendKind::kAStar, {},
                          OracleCachePolicy::kStripedLru);
  GraphDelta clock_delta;
  clock_delta.graph = &perturbed;
  clock_delta.oracle = &clock_oracle2;
  GraphDelta lru_delta;
  lru_delta.graph = &perturbed;
  lru_delta.oracle = &lru_oracle2;
  ASSERT_EQ(clock_sys.RefreshDiscretization(clock_delta).epoch, 1u);
  ASSERT_EQ(lru_sys.RefreshDiscretization(lru_delta).epoch, 1u);

  ExpectIdenticalReplay(clock_sys, lru_sys, after);

  // The replay alone may not repeat any (from, to, metric); probe a fixed
  // pair twice to prove both post-refresh oracles really serve hits.
  for (GraphOracle* o : {&clock_oracle2, &lru_oracle2}) {
    std::size_t hits_before = o->cache_hit_count();
    double d1 = o->DriveDistance(NodeId(0), NodeId(1));
    double d2 = o->DriveDistance(NodeId(0), NodeId(1));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d1),
              std::bit_cast<std::uint64_t>(d2));
    EXPECT_GT(o->cache_hit_count(), hits_before) << o->cache_policy_name();
  }
}

}  // namespace
}  // namespace xar
