#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/generator.h"
#include "graph/oracle.h"

namespace xar {
namespace {

RoadGraph SmallCity() {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  return GenerateCity(opt);
}

// Regression for the old single-uint64 packing (from << 34 | to << 2 |
// metric): for node ids >= 2^30 the top bits of `from` fell off the word,
// aliasing distinct (from, to) pairs onto one cache slot.
TEST(OracleCacheKeyTest, LargeNodeIdsDoNotCollide) {
  const NodeId big(1u << 30);
  const NodeId zero(0);
  const NodeId other(5);
  // Old packing: (2^30 << 34) overflows to 0, colliding with from == 0.
  EXPECT_FALSE(MakeOracleCacheKey(big, other, Metric::kDriveDistance) ==
               MakeOracleCacheKey(zero, other, Metric::kDriveDistance));
  // Full 32-bit ids survive on both sides.
  const NodeId max_id(0xFFFFFFFEu);
  EXPECT_FALSE(MakeOracleCacheKey(max_id, other, Metric::kDriveDistance) ==
               MakeOracleCacheKey(NodeId(0x7FFFFFFEu), other,
                                  Metric::kDriveDistance));
}

TEST(OracleCacheKeyTest, DirectionAndMetricDisambiguate) {
  const NodeId a(3);
  const NodeId b(7);
  EXPECT_FALSE(MakeOracleCacheKey(a, b, Metric::kDriveDistance) ==
               MakeOracleCacheKey(b, a, Metric::kDriveDistance));
  EXPECT_FALSE(MakeOracleCacheKey(a, b, Metric::kDriveDistance) ==
               MakeOracleCacheKey(a, b, Metric::kDriveTime));
  EXPECT_TRUE(MakeOracleCacheKey(a, b, Metric::kWalkDistance) ==
              MakeOracleCacheKey(a, b, Metric::kWalkDistance));
}

TEST(OracleConcurrencyTest, ParallelQueriesMatchSerialReference) {
  RoadGraph g = SmallCity();
  const std::size_t n = g.NumNodes();

  // Serial reference distances from a fresh oracle.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    pairs.emplace_back(
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(n))),
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(n))));
  }
  GraphOracle reference(g);
  std::vector<double> expected;
  expected.reserve(pairs.size());
  for (const auto& [from, to] : pairs) {
    expected.push_back(reference.DriveDistance(from, to));
  }

  // Hammer a shared oracle from several threads, every thread walking the
  // same pair list (maximal cache contention), and compare all results.
  GraphOracle shared(g);
  constexpr int kThreads = 4;
  std::vector<std::vector<double>> got(kThreads,
                                       std::vector<double>(pairs.size()));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        got[t][i] = shared.DriveDistance(pairs[i].first, pairs[i].second);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[t][i], expected[i]) << "thread " << t << " pair "
                                               << i;
    }
  }
  // Hits + real computations account for every query made.
  EXPECT_EQ(shared.computation_count() + shared.cache_hit_count(),
            kThreads * pairs.size());
}

TEST(OracleConcurrencyTest, ConcurrentRoutesAreIndependent) {
  RoadGraph g = SmallCity();
  GraphOracle oracle(g);
  Path serial = oracle.DriveRoute(NodeId(2), NodeId(40));
  ASSERT_TRUE(serial.Found());

  std::vector<Path> routes(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { routes[t] = oracle.DriveRoute(NodeId(2), NodeId(40)); });
  }
  for (std::thread& th : threads) th.join();
  for (const Path& p : routes) {
    ASSERT_TRUE(p.Found());
    EXPECT_DOUBLE_EQ(p.length_m, serial.length_m);
    EXPECT_EQ(p.nodes.size(), serial.nodes.size());
  }
}

}  // namespace
}  // namespace xar
