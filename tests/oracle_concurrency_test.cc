#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/oracle_cache.h"

namespace xar {
namespace {

RoadGraph SmallCity() {
  CityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 15;
  return GenerateCity(opt);
}

// Regression for the old single-uint64 packing (from << 34 | to << 2 |
// metric): for node ids >= 2^30 the top bits of `from` fell off the word,
// aliasing distinct (from, to) pairs onto one cache slot.
TEST(OracleCacheKeyTest, LargeNodeIdsDoNotCollide) {
  const NodeId big(1u << 30);
  const NodeId zero(0);
  const NodeId other(5);
  // Old packing: (2^30 << 34) overflows to 0, colliding with from == 0.
  EXPECT_FALSE(MakeOracleCacheKey(big, other, Metric::kDriveDistance) ==
               MakeOracleCacheKey(zero, other, Metric::kDriveDistance));
  // Full 32-bit ids survive on both sides.
  const NodeId max_id(0xFFFFFFFEu);
  EXPECT_FALSE(MakeOracleCacheKey(max_id, other, Metric::kDriveDistance) ==
               MakeOracleCacheKey(NodeId(0x7FFFFFFEu), other,
                                  Metric::kDriveDistance));
}

TEST(OracleCacheKeyTest, DirectionAndMetricDisambiguate) {
  const NodeId a(3);
  const NodeId b(7);
  EXPECT_FALSE(MakeOracleCacheKey(a, b, Metric::kDriveDistance) ==
               MakeOracleCacheKey(b, a, Metric::kDriveDistance));
  EXPECT_FALSE(MakeOracleCacheKey(a, b, Metric::kDriveDistance) ==
               MakeOracleCacheKey(a, b, Metric::kDriveTime));
  EXPECT_TRUE(MakeOracleCacheKey(a, b, Metric::kWalkDistance) ==
              MakeOracleCacheKey(a, b, Metric::kWalkDistance));
}

TEST(OracleConcurrencyTest, ParallelQueriesMatchSerialReference) {
  RoadGraph g = SmallCity();
  const std::size_t n = g.NumNodes();

  // Serial reference distances from a fresh oracle.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    pairs.emplace_back(
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(n))),
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(n))));
  }
  GraphOracle reference(g);
  std::vector<double> expected;
  expected.reserve(pairs.size());
  for (const auto& [from, to] : pairs) {
    expected.push_back(reference.DriveDistance(from, to));
  }

  // Hammer a shared oracle from several threads, every thread walking the
  // same pair list (maximal cache contention), and compare all results.
  GraphOracle shared(g);
  constexpr int kThreads = 4;
  std::vector<std::vector<double>> got(kThreads,
                                       std::vector<double>(pairs.size()));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        got[t][i] = shared.DriveDistance(pairs[i].first, pairs[i].second);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[t][i], expected[i]) << "thread " << t << " pair "
                                               << i;
    }
  }
  // Hits + real computations account for every query made.
  EXPECT_EQ(shared.computation_count() + shared.cache_hit_count(),
            kThreads * pairs.size());
}

// Many-thread mixed hit/insert/evict torture for the lock-free CLOCK cache
// itself (runs under the TSan job with the rest of this suite). The table is
// much smaller than the key pool, so every thread continuously races
// lookups against inserts and CLOCK evictions. A hit must always return
// exactly the value deterministically derived from its key — a torn read,
// an ABA slot reuse or a misplaced entry all surface as a value mismatch.
TEST(OracleConcurrencyTest, ClockCacheTortureLoop) {
  OracleClockCache cache(128);
  constexpr std::size_t kKeyPool = 1024;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;

  // Value is a pure function of the key, so any (key -> value) pairing that
  // survives publication is either exactly right or a protocol bug.
  auto value_of = [](std::uint32_t from, std::uint32_t to) {
    return static_cast<double>(from) * 4096.0 + static_cast<double>(to);
  };

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIterations; ++i) {
        std::uint32_t from =
            static_cast<std::uint32_t>(rng.NextIndex(kKeyPool));
        std::uint32_t to = static_cast<std::uint32_t>(rng.NextIndex(64));
        OracleCacheKey key =
            MakeOracleCacheKey(NodeId(from), NodeId(to),
                               Metric::kDriveDistance);
        if (std::optional<double> got = cache.Lookup(key)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (*got != value_of(from, to)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Insert(key, value_of(from, to));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.occupied(), cache.capacity());
  OracleCacheCounters c = cache.counters();
  EXPECT_GT(c.insertions, 0u);
  EXPECT_LE(c.evictions, c.insertions);
  // Post-quiescence the table still answers exactly for whatever survived.
  std::size_t surviving = 0;
  for (std::uint32_t from = 0; from < kKeyPool; ++from) {
    for (std::uint32_t to = 0; to < 64; ++to) {
      OracleCacheKey key = MakeOracleCacheKey(NodeId(from), NodeId(to),
                                              Metric::kDriveDistance);
      if (std::optional<double> got = cache.Lookup(key)) {
        ++surviving;
        ASSERT_EQ(*got, value_of(from, to));
      }
    }
  }
  EXPECT_LE(surviving, cache.capacity());
}

// The GraphOracle-level differential under eviction/drop churn: a tiny
// CLOCK cache shared by several threads walking the same pair list must
// still produce bit-identical distances to a fresh uncached oracle, and the
// hits-plus-computations accounting must cover every query even when racing
// inserts are dropped.
TEST(OracleConcurrencyTest, ClockPolicyParallelMatchesSerialUnderEviction) {
  RoadGraph g = SmallCity();
  const std::size_t n = g.NumNodes();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng rng(123);
  for (int i = 0; i < 300; ++i) {
    pairs.emplace_back(
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(n))),
        NodeId(static_cast<NodeId::underlying_type>(rng.NextIndex(n))));
  }
  GraphOracle reference(g, /*cache_capacity=*/0);
  std::vector<double> expected;
  expected.reserve(pairs.size());
  for (const auto& [from, to] : pairs) {
    expected.push_back(reference.DriveDistance(from, to));
  }

  // Capacity far below the working set keeps the CLOCK hand moving.
  GraphOracle shared(g, /*cache_capacity=*/32, RoutingBackendKind::kCh, {},
                     OracleCachePolicy::kClock);
  constexpr int kThreads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        std::size_t j = (i + static_cast<std::size_t>(t) * 37) % pairs.size();
        double d = shared.DriveDistance(pairs[j].first, pairs[j].second);
        if (d != expected[j]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(shared.computation_count() + shared.cache_hit_count(),
            kThreads * pairs.size());
  OracleCacheCounters c = shared.cache_counters();
  EXPECT_GT(c.evictions, 0u) << "capacity 32 over 300 pairs must churn";
}

TEST(OracleConcurrencyTest, ConcurrentRoutesAreIndependent) {
  RoadGraph g = SmallCity();
  GraphOracle oracle(g);
  Path serial = oracle.DriveRoute(NodeId(2), NodeId(40));
  ASSERT_TRUE(serial.Found());

  std::vector<Path> routes(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { routes[t] = oracle.DriveRoute(NodeId(2), NodeId(40)); });
  }
  for (std::thread& th : threads) th.join();
  for (const Path& p : routes) {
    ASSERT_TRUE(p.Found());
    EXPECT_DOUBLE_EQ(p.length_m, serial.length_m);
    EXPECT_EQ(p.nodes.size(), serial.nodes.size());
  }
}

}  // namespace
}  // namespace xar
