#include <gtest/gtest.h>

#include <vector>

#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Workload(const TestCity& city, std::size_t n) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = 77;
  return GenerateTrips(city.graph.bounds(), opt);
}

SimResult RunSerial(TestCity& city, const std::vector<TaxiTrip>& trips,
                    const SimOptions& options) {
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  return SimulateRideSharing(xar, trips, options);
}

SimResult RunParallel(TestCity& city, const std::vector<TaxiTrip>& trips,
                      const ParallelSimOptions& options,
                      std::size_t num_shards) {
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          num_shards);
  return SimulateRideSharingParallel(xar, trips, options);
}

// The headline validation from the issue: the parallel driver must replay
// the workload to the same matched/created counts as the serial driver at
// look-to-book = 1 (and, by the same replay argument, any ratio).
TEST(ParallelSimTest, MatchesSerialCountsAtLookToBookOne) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = Workload(city, 600);

  SimOptions serial_options;
  SimResult serial = RunSerial(city, trips, serial_options);

  ParallelSimOptions parallel_options;
  parallel_options.sim = serial_options;
  parallel_options.num_threads = 4;
  parallel_options.batch_size = 48;
  SimResult parallel = RunParallel(city, trips, parallel_options, 4);

  EXPECT_GT(serial.matched, 0u);
  EXPECT_EQ(parallel.requests, serial.requests);
  EXPECT_EQ(parallel.matched, serial.matched);
  EXPECT_EQ(parallel.rides_created, serial.rides_created);
  ASSERT_EQ(parallel.bookings.size(), serial.bookings.size());
  for (std::size_t i = 0; i < serial.bookings.size(); ++i) {
    EXPECT_EQ(parallel.bookings[i].request, serial.bookings[i].request);
    EXPECT_EQ(parallel.bookings[i].ride, serial.bookings[i].ride);
  }
}

TEST(ParallelSimTest, MatchesSerialCountsAtHigherLookToBook) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = Workload(city, 400);

  SimOptions options;
  options.look_to_book = 3;
  SimResult serial = RunSerial(city, trips, options);

  ParallelSimOptions parallel_options;
  parallel_options.sim = options;
  parallel_options.num_threads = 2;
  parallel_options.batch_size = 32;
  SimResult parallel = RunParallel(city, trips, parallel_options, 3);

  EXPECT_EQ(parallel.matched, serial.matched);
  EXPECT_EQ(parallel.rides_created, serial.rides_created);
}

TEST(ParallelSimTest, RecordsSearchLatencyForEveryTrip) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = Workload(city, 200);
  ParallelSimOptions options;
  options.num_threads = 2;
  options.batch_size = 16;
  SimResult result = RunParallel(city, trips, options, 2);
  // Phase 1 measures exactly one concurrent search per trip.
  EXPECT_EQ(result.search_ms.count(), trips.size());
  EXPECT_EQ(result.requests, trips.size());
}

}  // namespace
}  // namespace xar
