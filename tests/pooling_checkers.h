// Shared invariant checkers for the pooling test battery (ISSUE 10).
//
// Three checkers, each an ::testing::AssertionResult so every suite
// (differential, fuzz, property, stress) reports the same diagnostics:
//
//  - PersistentMatchesRebuild: the persistent RideSchedule must equal a
//    from-scratch KineticTree rebuilt by replaying its pending riders —
//    same retained-ordering count, same node count, same pending stops,
//    cost-equal best schedule. This is the core soundness claim of the
//    persistent tree: insertion keeps *all* feasible orderings, so
//    incremental maintenance and rebuild are interchangeable.
//  - PooledRideConsistent: ride-level via/route invariants — every via sits
//    on the route in order, pickups precede drop-offs, seat capacity holds
//    at every prefix. Works on Ride copies, so the concurrent suites can
//    use it across lock boundaries.
//  - ScheduleRespectsBudgets: independently re-prices the best ordering
//    with the oracle and checks every stop meets its deadline and every
//    prefix fits the seat capacity — catching arrival-time bookkeeping
//    drift inside the tree itself.

#ifndef XAR_TESTS_POOLING_CHECKERS_H_
#define XAR_TESTS_POOLING_CHECKERS_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <map>
#include <vector>

#include "schedule/kinetic_tree.h"
#include "schedule/ride_schedule.h"
#include "xar/ride.h"

namespace xar {
namespace testing {

inline ::testing::AssertionResult PersistentMatchesRebuild(
    const RideSchedule& sched, DistanceOracle& oracle) {
  const std::vector<RideSchedule::PendingRider> riders = sched.PendingRiders();
  int onboard = 0;
  for (const RideSchedule::PendingRider& r : riders) {
    if (r.onboard) ++onboard;
  }
  KineticTree fresh(sched.root(), sched.root_time_s(), sched.capacity(),
                    oracle, onboard);
  for (const RideSchedule::PendingRider& r : riders) {
    const bool ok = r.onboard ? fresh.InsertSingle(r.dropoff)
                              : fresh.Insert(r.pickup, r.dropoff);
    if (!ok) {
      return ::testing::AssertionFailure()
             << "from-scratch rebuild rejected rider " << r.request.value()
             << " that the persistent tree holds";
    }
  }
  if (fresh.NumSchedules() != sched.NumSchedules()) {
    return ::testing::AssertionFailure()
           << "retained orderings diverged: persistent=" << sched.NumSchedules()
           << " rebuild=" << fresh.NumSchedules();
  }
  if (fresh.NumNodes() != sched.NumNodes()) {
    return ::testing::AssertionFailure()
           << "tree size diverged: persistent=" << sched.NumNodes()
           << " rebuild=" << fresh.NumNodes();
  }
  if (fresh.NumPendingStops() != sched.PendingStops()) {
    return ::testing::AssertionFailure()
           << "pending stops diverged: persistent=" << sched.PendingStops()
           << " rebuild=" << fresh.NumPendingStops();
  }
  const Schedule live = sched.Best();
  const Schedule rebuilt = fresh.BestSchedule();
  if (live.stops.size() != rebuilt.stops.size()) {
    return ::testing::AssertionFailure()
           << "best schedule lengths diverged: persistent="
           << live.stops.size() << " rebuild=" << rebuilt.stops.size();
  }
  // Cost-equal, not bit-identical: sibling order inside the tree may differ
  // after AdvanceTo promotions, so exact ties can tip toward a different
  // (equally good) ordering.
  if (std::abs(live.completion_time_s - rebuilt.completion_time_s) > 1e-6) {
    return ::testing::AssertionFailure()
           << "best completion time diverged: persistent="
           << live.completion_time_s
           << " rebuild=" << rebuilt.completion_time_s;
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult PooledRideConsistent(const Ride& r) {
  if (r.via_points.size() != r.via_route_index.size()) {
    return ::testing::AssertionFailure()
           << "ride " << r.id.value() << ": " << r.via_points.size()
           << " via points vs " << r.via_route_index.size() << " indexes";
  }
  if (r.via_points.empty() || r.via_points.front().node != r.source ||
      r.via_points.back().node != r.destination) {
    return ::testing::AssertionFailure()
           << "ride " << r.id.value() << ": via list does not span "
           << "source..destination";
  }
  for (std::size_t v = 0; v < r.via_points.size(); ++v) {
    if (r.via_route_index[v] >= r.route.nodes.size() ||
        r.route.nodes[r.via_route_index[v]] != r.via_points[v].node) {
      return ::testing::AssertionFailure()
             << "ride " << r.id.value() << ": via " << v
             << " is not anchored on the route";
    }
    if (v > 0 && r.via_route_index[v - 1] > r.via_route_index[v]) {
      return ::testing::AssertionFailure()
             << "ride " << r.id.value() << ": via_route_index not monotone at "
             << v;
    }
    if (v > 0 && r.via_points[v - 1].eta_s > r.via_points[v].eta_s + 1e-6) {
      return ::testing::AssertionFailure()
             << "ride " << r.id.value() << ": via ETAs not monotone at " << v;
    }
  }
  int onboard = 0;
  std::map<std::uint32_t, bool> picked;
  for (const ViaPoint& vp : r.via_points) {
    if (!vp.request.valid()) continue;
    if (vp.is_pickup) {
      ++onboard;
      picked[vp.request.value()] = true;
    } else {
      if (!picked[vp.request.value()]) {
        return ::testing::AssertionFailure()
               << "ride " << r.id.value() << ": drop-off of request "
               << vp.request.value() << " precedes its pickup";
      }
      --onboard;
    }
    if (onboard > r.seats_total || onboard < 0) {
      return ::testing::AssertionFailure()
             << "ride " << r.id.value() << ": prefix occupancy " << onboard
             << " outside [0, " << r.seats_total << "]";
    }
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult ScheduleRespectsBudgets(
    const RideSchedule& sched, DistanceOracle& oracle) {
  const Schedule best = sched.Best();
  NodeId at = sched.root();
  double t = sched.root_time_s();
  int onboard = sched.Onboard();
  for (std::size_t i = 0; i < best.stops.size(); ++i) {
    const ScheduleStop& stop = best.stops[i];
    t += oracle.DriveTime(at, stop.node);
    at = stop.node;
    if (t > stop.deadline_s + 1e-6) {
      return ::testing::AssertionFailure()
             << "stop " << i << " (request " << stop.request.value()
             << (stop.is_pickup ? " pickup" : " dropoff") << ") arrives at "
             << t << " past deadline " << stop.deadline_s;
    }
    onboard += stop.is_pickup ? 1 : -1;
    if (onboard < 0 || onboard > sched.capacity()) {
      return ::testing::AssertionFailure()
             << "stop " << i << ": occupancy " << onboard << " outside [0, "
             << sched.capacity() << "]";
    }
  }
  if (!best.stops.empty() &&
      std::abs(t - best.completion_time_s) > 1e-6) {
    return ::testing::AssertionFailure()
           << "tree completion time " << best.completion_time_s
           << " disagrees with re-priced arrival " << t;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing
}  // namespace xar

#endif  // XAR_TESTS_POOLING_CHECKERS_H_
