// Persistent-vs-rebuild differential suite (ISSUE 10): after EVERY booking,
// cancellation, no-show and clock advance, each ride's persistent
// RideSchedule must equal a KineticTree rebuilt from scratch by replaying
// its pending riders — same retained orderings, same node count, cost-equal
// best schedule. This pins the all-feasible-orderings invariant that makes
// incremental maintenance sound.
//
// Two legs per seed:
//  - Serial: one XarSystem, schedule introspected directly via GetSchedule.
//  - Concurrent: the same scripted op stream replayed through XarSystem and
//    a 4-shard ConcurrentXarSystem side by side; outcomes must be
//    observationally identical (booking status, detours, ETAs), with the
//    serial twin supplying the rebuild check the sharded system cannot
//    expose across lock boundaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "graph/oracle.h"
#include "tests/pooling_checkers.h"
#include "tests/test_helpers.h"
#include "xar/concurrent_xar.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::PersistentMatchesRebuild;
using testing::PooledRideConsistent;
using testing::ScheduleRespectsBudgets;
using testing::SharedCity;
using testing::TestCity;

constexpr double kStart = 8 * 3600.0;
constexpr std::size_t kShards = 4;
constexpr std::size_t kOpsPerSeed = 110;
constexpr std::size_t kFleet = 3;

XarOptions KineticOptions() {
  XarOptions opt;
  opt.kinetic_booking = true;
  return opt;
}

LatLng Frac(double fy, double fx) {
  const BoundingBox& b = SharedCity().graph.bounds();
  return {b.min_lat + fy * (b.max_lat - b.min_lat),
          b.min_lng + fx * (b.max_lng - b.min_lng)};
}

/// One scripted operation. The stream is a pure function of the seed;
/// cancel / no-show targets are picked from the live booking ledger with
/// `pick`, so two systems replaying the stream stay in lockstep as long as
/// their outcomes agree (which the concurrent leg asserts).
struct Op {
  enum Kind { kBook, kCancel, kNoShow, kAdvance };
  Kind kind = kBook;
  RideRequest request;        // kBook
  std::uint64_t pick = 0;     // kCancel / kNoShow
  double advance_to = 0.0;    // kAdvance
};

std::vector<Op> MakeOps(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<Op> ops;
  double now = kStart;
  std::uint32_t next_request = 1;
  for (std::size_t i = 0; i < kOpsPerSeed; ++i) {
    const double dice = u(rng);
    Op op;
    if (dice < 0.60) {
      op.kind = Op::kBook;
      // Riders hug the fleet's diagonal so true pooling happens.
      const double a = 0.10 + 0.50 * u(rng);
      const double b = std::min(0.95, a + 0.10 + 0.30 * u(rng));
      const double jitter = 0.08 * (u(rng) - 0.5);
      op.request.id = RequestId(next_request++);
      op.request.source = Frac(a + jitter, a - jitter);
      op.request.destination = Frac(b - jitter, b + jitter);
      op.request.earliest_departure_s = now;
      op.request.latest_departure_s = now + 2400;
    } else if (dice < 0.74) {
      op.kind = Op::kCancel;
      op.pick = rng();
    } else if (dice < 0.84) {
      op.kind = Op::kNoShow;
      op.pick = rng();
    } else {
      op.kind = Op::kAdvance;
      now += 40 + 120 * u(rng);
      op.advance_to = now;
    }
    ops.push_back(op);
  }
  return ops;
}

RideId CreateDiagonal(XarSystem& xar, double offset) {
  RideOffer offer;
  offer.source = Frac(0.05 + offset, 0.05);
  offer.destination = Frac(0.95, 0.95 - offset);
  offer.departure_time_s = kStart;
  offer.detour_limit_m = 8000;
  Result<RideId> ride = xar.CreateRide(offer);
  EXPECT_TRUE(ride.ok());
  return *ride;
}

class PoolingDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PoolingDifferentialTest, PersistentEqualsRebuildAfterEveryOp) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "reproducing seed = " << seed);
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle,
                KineticOptions());

  std::vector<RideId> rides;
  for (std::size_t f = 0; f < kFleet; ++f) {
    rides.push_back(CreateDiagonal(xar, 0.03 * static_cast<double>(f)));
  }

  std::vector<std::pair<RideId, RequestId>> booked;
  std::size_t bookings = 0;
  std::size_t removals = 0;
  std::size_t op_index = 0;
  for (const Op& op : MakeOps(seed)) {
    SCOPED_TRACE(::testing::Message() << "op " << op_index++);
    switch (op.kind) {
      case Op::kBook: {
        std::vector<RideMatch> matches = xar.Search(op.request);
        if (matches.empty()) break;
        Result<BookingRecord> b =
            xar.Book(matches.front().ride, op.request, matches.front());
        if (b.ok()) {
          booked.emplace_back(b->ride, op.request.id);
          ++bookings;
        }
        break;
      }
      case Op::kCancel:
      case Op::kNoShow: {
        // Scan from the pick until one removal lands: a rider already
        // picked up (or on a finished ride) legitimately stays booked.
        const std::size_t n = booked.size();
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t idx = (op.pick + k) % n;
          const auto [ride, request] = booked[idx];
          Status s = op.kind == Op::kCancel
                         ? xar.CancelBooking(ride, request)
                         : xar.ReportNoShow(ride, request);
          if (s.ok()) {
            booked.erase(booked.begin() + static_cast<std::ptrdiff_t>(idx));
            ++removals;
            break;
          }
        }
        break;
      }
      case Op::kAdvance:
        xar.AdvanceTime(op.advance_to);
        break;
    }

    for (RideId ride : rides) {
      const Ride* r = xar.GetRide(ride);
      ASSERT_NE(r, nullptr);
      EXPECT_TRUE(PooledRideConsistent(*r));
      const RideSchedule* sched = xar.GetSchedule(ride);
      if (sched == nullptr) continue;  // never booked kinetically / finished
      EXPECT_TRUE(PersistentMatchesRebuild(*sched, oracle));
      EXPECT_TRUE(ScheduleRespectsBudgets(*sched, oracle));
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // first divergence is the interesting one; stop the replay
    }
  }
  EXPECT_GT(bookings, 0u) << "op stream produced no bookings";
  EXPECT_GT(removals, 0u) << "op stream never exercised Remove";
  const PoolingStats stats = xar.pooling_stats();
  EXPECT_EQ(stats.insertions, bookings);
  EXPECT_EQ(stats.removals, removals);
}

TEST_P(PoolingDifferentialTest, SerialAndConcurrentAgree) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "reproducing seed = " << seed);
  TestCity& city = SharedCity();
  GraphOracle serial_oracle(city.graph);
  GraphOracle shard_oracle(city.graph);
  XarSystem serial(city.graph, *city.spatial, *city.region, serial_oracle,
                   KineticOptions());
  ConcurrentXarSystem sharded(city.graph, *city.spatial, *city.region,
                              shard_oracle, KineticOptions(), kShards);

  std::vector<RideId> rides;
  for (std::size_t f = 0; f < kFleet; ++f) {
    RideOffer offer;
    offer.source = Frac(0.05 + 0.03 * static_cast<double>(f), 0.05);
    offer.destination = Frac(0.95, 0.95 - 0.03 * static_cast<double>(f));
    offer.departure_time_s = kStart;
    offer.detour_limit_m = 8000;
    Result<RideId> a = serial.CreateRide(offer);
    Result<RideId> b = sharded.CreateRide(offer);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value(), b.value());
    rides.push_back(*a);
  }

  std::vector<std::pair<RideId, RequestId>> booked;
  std::size_t op_index = 0;
  for (const Op& op : MakeOps(seed)) {
    SCOPED_TRACE(::testing::Message() << "op " << op_index++);
    switch (op.kind) {
      case Op::kBook: {
        std::vector<RideMatch> sm = serial.Search(op.request);
        std::vector<RideMatch> cm = sharded.Search(op.request);
        ASSERT_EQ(sm.size(), cm.size());
        if (sm.empty()) break;
        ASSERT_EQ(sm.front().ride, cm.front().ride);
        Result<BookingRecord> sb =
            serial.Book(sm.front().ride, op.request, sm.front());
        Result<BookingRecord> cb =
            sharded.Book(cm.front().ride, op.request, cm.front());
        ASSERT_EQ(sb.ok(), cb.ok()) << sb.status().ToString() << " vs "
                                    << cb.status().ToString();
        if (!sb.ok()) break;
        EXPECT_EQ(sb->actual_detour_m, cb->actual_detour_m);
        EXPECT_EQ(sb->pickup_eta_s, cb->pickup_eta_s);
        EXPECT_EQ(sb->dropoff_eta_s, cb->dropoff_eta_s);
        booked.emplace_back(sb->ride, op.request.id);
        break;
      }
      case Op::kCancel:
      case Op::kNoShow: {
        const std::size_t n = booked.size();
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t idx = (op.pick + k) % n;
          const auto [ride, request] = booked[idx];
          Status ss, cs;
          if (op.kind == Op::kCancel) {
            ss = serial.CancelBooking(ride, request);
            cs = sharded.CancelBooking(ride, request);
          } else {
            ss = serial.ReportNoShow(ride, request);
            cs = sharded.ReportNoShow(ride, request);
          }
          ASSERT_EQ(ss.ok(), cs.ok())
              << ss.ToString() << " vs " << cs.ToString();
          if (ss.ok()) {
            booked.erase(booked.begin() + static_cast<std::ptrdiff_t>(idx));
            break;
          }
        }
        break;
      }
      case Op::kAdvance:
        serial.AdvanceTime(op.advance_to);
        sharded.AdvanceTime(op.advance_to);
        break;
    }

    for (RideId ride : rides) {
      const Ride* sr = serial.GetRide(ride);
      ASSERT_NE(sr, nullptr);
      Result<Ride> cr = sharded.GetRide(ride);
      ASSERT_TRUE(cr.ok());
      EXPECT_TRUE(PooledRideConsistent(*sr));
      EXPECT_TRUE(PooledRideConsistent(cr.value()));
      EXPECT_EQ(sr->seats_available, cr->seats_available);
      EXPECT_EQ(sr->route.length_m, cr->route.length_m);
      ASSERT_EQ(sr->via_points.size(), cr->via_points.size());
      const RideSchedule* sched = serial.GetSchedule(ride);
      if (sched != nullptr) {
        EXPECT_TRUE(PersistentMatchesRebuild(*sched, serial_oracle));
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }

  // Both sides must have done real pooled work, and agree on the totals.
  const PoolingStats ss = serial.pooling_stats();
  const PoolingStats cs = sharded.pooling_stats();
  EXPECT_GT(ss.insertions, 0u);
  EXPECT_EQ(ss.insertions, cs.insertions);
  EXPECT_EQ(ss.removals, cs.removals);
  EXPECT_EQ(ss.max_pooled_riders, cs.max_pooled_riders);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolingDifferentialTest,
                         ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "Seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace xar
