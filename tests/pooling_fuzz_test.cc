// Seeded pooling fuzz harness (ISSUE 10): randomized book / cancel /
// no-show / advance streams against a kinetic-booking XarSystem, with an
// EXACT external ledger of seats and detour budget:
//
//  - seats_available must equal seats_total minus the seats of every live
//    booking — including multi-seat riders, which pins the RemoveRider fix
//    that used to silently refund 1 seat when the booking record was gone;
//  - detour_used_m must equal max(0, route_length - shortest(source, dest))
//    exactly, and never exceed the driver's detour budget (the kinetic
//    booking path enforces it before committing a plan);
//  - every ride stays via/route-consistent with prefix seat feasibility.
//
// The tier-1 binary runs a small seed set; the stress twin (XAR_FUZZ_WIDE,
// ctest label `stress`, TSan job) sweeps a wider range with longer streams.
// Every assertion carries the reproducing seed:
//   ./pooling_fuzz_test --gtest_filter='*Seed<seed>*'

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "graph/oracle.h"
#include "tests/pooling_checkers.h"
#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::PooledRideConsistent;
using testing::SharedCity;
using testing::TestCity;

#ifdef XAR_FUZZ_WIDE
constexpr std::uint64_t kSeedBegin = 1;
constexpr std::uint64_t kSeedEnd = 13;  // exclusive
constexpr std::size_t kOps = 280;
#else
constexpr std::uint64_t kSeedBegin = 1;
constexpr std::uint64_t kSeedEnd = 5;  // exclusive
constexpr std::size_t kOps = 140;
#endif

constexpr double kStart = 8 * 3600.0;
constexpr std::size_t kFleet = 4;

std::vector<std::uint64_t> FuzzSeeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = kSeedBegin; s < kSeedEnd; ++s) seeds.push_back(s);
  return seeds;
}

LatLng Frac(double fy, double fx) {
  const BoundingBox& b = SharedCity().graph.bounds();
  return {b.min_lat + fy * (b.max_lat - b.min_lat),
          b.min_lng + fx * (b.max_lng - b.min_lng)};
}

struct LiveBooking {
  RideId ride;
  RequestId request;
  int seats = 1;
};

class PoolingFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolingFuzzTest, ExactSeatAndBudgetLedger) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "reproducing seed = " << seed);
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions opt;
  opt.kinetic_booking = true;
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle, opt);

  std::vector<RideId> rides;
  std::map<std::uint32_t, double> base_m;  // shortest source->dest per ride
  for (std::size_t f = 0; f < kFleet; ++f) {
    RideOffer offer;
    offer.source = Frac(0.05 + 0.02 * static_cast<double>(f), 0.05);
    offer.destination = Frac(0.95, 0.95 - 0.02 * static_cast<double>(f));
    offer.departure_time_s = kStart;
    offer.detour_limit_m = 6000;
    offer.seats = 4;
    Result<RideId> ride = xar.CreateRide(offer);
    ASSERT_TRUE(ride.ok());
    const Ride* r = xar.GetRide(*ride);
    base_m[ride->value()] = oracle.DriveDistance(r->source, r->destination);
    rides.push_back(*ride);
  }

  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<LiveBooking> ledger;
  double now = kStart;
  std::uint32_t next_request = 1;
  std::size_t books = 0;
  std::size_t unwinds = 0;

  // Deterministic warm-up booking: some op streams advance sim time past
  // the fleet's window before their first book lands, which would make the
  // end-of-stream books>0 guard vacuous. One rider on the shared diagonal
  // guarantees every seed exercises at least one kinetic insertion.
  {
    RideRequest req;
    req.id = RequestId(next_request++);
    req.source = Frac(0.30, 0.30);
    req.destination = Frac(0.60, 0.60);
    req.earliest_departure_s = now;
    req.latest_departure_s = now + 2400;
    std::vector<RideMatch> matches = xar.Search(req);
    ASSERT_FALSE(matches.empty()) << "warm-up rider found no match";
    Result<BookingRecord> booking =
        xar.Book(matches.front().ride, req, matches.front());
    ASSERT_TRUE(booking.ok()) << booking.status().message();
    ledger.push_back({booking->ride, req.id, req.seats});
    ++books;
  }

  for (std::size_t i = 0; i < kOps; ++i) {
    SCOPED_TRACE(::testing::Message() << "op " << i);
    const double dice = u(rng);
    if (dice < 0.58) {
      RideRequest req;
      req.id = RequestId(next_request++);
      const double a = 0.10 + 0.50 * u(rng);
      const double b = std::min(0.95, a + 0.10 + 0.30 * u(rng));
      const double jitter = 0.08 * (u(rng) - 0.5);
      req.source = Frac(a + jitter, a - jitter);
      req.destination = Frac(b - jitter, b + jitter);
      req.earliest_departure_s = now;
      req.latest_departure_s = now + 2400;
      req.seats = u(rng) < 0.3 ? 2 : 1;  // multi-seat riders pin the refund
      std::vector<RideMatch> matches = xar.Search(req);
      if (!matches.empty()) {
        Result<BookingRecord> booking =
            xar.Book(matches.front().ride, req, matches.front());
        if (booking.ok()) {
          ASSERT_EQ(booking->seats, req.seats);
          ledger.push_back({booking->ride, req.id, req.seats});
          ++books;
        }
      }
    } else if (dice < 0.80) {
      // Scan from a random pick until one unwinding lands: riders already
      // picked up (cancel) or fully served stay booked, legitimately.
      const std::size_t n = ledger.size();
      const std::size_t pick = n > 0 ? rng() % n : 0;
      const bool cancel = u(rng) < 0.5;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (pick + k) % n;
        const LiveBooking picked = ledger[idx];
        Status s = cancel ? xar.CancelBooking(picked.ride, picked.request)
                          : xar.ReportNoShow(picked.ride, picked.request);
        if (s.ok()) {
          ledger.erase(ledger.begin() + static_cast<std::ptrdiff_t>(idx));
          ++unwinds;
          break;
        }
      }
    } else {
      now += 30 + 150 * u(rng);
      xar.AdvanceTime(now);
    }

    // A finished ride served its riders: their bookings leave the ledger
    // (their seats are never refunded — the ride is over).
    ledger.erase(std::remove_if(ledger.begin(), ledger.end(),
                                [&](const LiveBooking& b) {
                                  const Ride* r = xar.GetRide(b.ride);
                                  return r == nullptr || !r->active;
                                }),
                 ledger.end());

    for (RideId ride : rides) {
      const Ride* r = xar.GetRide(ride);
      ASSERT_NE(r, nullptr);
      if (!r->active) continue;
      int booked_seats = 0;
      for (const LiveBooking& b : ledger) {
        if (b.ride == ride) booked_seats += b.seats;
      }
      ASSERT_EQ(r->seats_available, r->seats_total - booked_seats)
          << "ride " << ride.value() << " seat ledger diverged";
      ASSERT_LE(r->detour_used_m, r->detour_limit_m + 1e-6)
          << "ride " << ride.value() << " blew its detour budget";
      const double expected_detour =
          std::max(0.0, r->route.length_m - base_m[ride.value()]);
      ASSERT_NEAR(r->detour_used_m, expected_detour, 1e-6)
          << "ride " << ride.value() << " detour bookkeeping diverged";
      ASSERT_TRUE(PooledRideConsistent(*r));
    }
  }

  EXPECT_GT(books, 0u) << "seed produced no bookings";
  const PoolingStats stats = xar.pooling_stats();
  EXPECT_EQ(stats.insertions, books);
  EXPECT_EQ(stats.removals, unwinds);
  EXPECT_GE(stats.max_pooled_riders, 1u);
}

INSTANTIATE_TEST_SUITE_P(
#ifdef XAR_FUZZ_WIDE
    WideSeeds,
#else
    Tier1Seeds,
#endif
    PoolingFuzzTest, ::testing::ValuesIn(FuzzSeeds()),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
      return "Seed" + std::to_string(info.param);
    });

}  // namespace
}  // namespace xar
