// Property suite for pooled schedules (ISSUE 10):
//
//  - Every pooled schedule respects per-rider budgets at every prefix: each
//    rider's pickup and drop-off deadline (the detour-budget contract minted
//    at booking time from XarOptions::eta_window_slack_s / max_onboard_s)
//    bounds the via ETA the committed route actually serves, and seat
//    capacity holds at every prefix of every retained ordering.
//  - With kinetic_booking=false nothing changes versus the seed behaviour:
//    no schedule is ever materialized, the pooling counters stay zero, and
//    the splice path keeps its <= 4 shortest-path bound per booking.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "graph/oracle.h"
#include "tests/pooling_checkers.h"
#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::PersistentMatchesRebuild;
using testing::PooledRideConsistent;
using testing::ScheduleRespectsBudgets;
using testing::SharedCity;
using testing::TestCity;

constexpr double kStart = 8 * 3600.0;

class PoolingPropertyTest : public ::testing::Test {
 protected:
  PoolingPropertyTest() : city_(SharedCity()) {}

  LatLng Frac(double fy, double fx) const {
    const BoundingBox& b = city_.graph.bounds();
    return {b.min_lat + fy * (b.max_lat - b.min_lat),
            b.min_lng + fx * (b.max_lng - b.min_lng)};
  }

  RideId CreateDiagonal(XarSystem& xar, double detour_limit_m = 8000) {
    RideOffer offer;
    offer.source = Frac(0.05, 0.05);
    offer.destination = Frac(0.95, 0.95);
    offer.departure_time_s = kStart;
    offer.detour_limit_m = detour_limit_m;
    offer.seats = 4;
    Result<RideId> ride = xar.CreateRide(offer);
    EXPECT_TRUE(ride.ok());
    return *ride;
  }

  RideRequest MakeRequest(std::uint32_t id, double fy0, double fx0,
                          double fy1, double fx1, double t) const {
    RideRequest req;
    req.id = RequestId(id);
    req.source = Frac(fy0, fx0);
    req.destination = Frac(fy1, fx1);
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 2400;
    return req;
  }

  TestCity& city_;
};

TEST_F(PoolingPropertyTest, EveryPrefixRespectsBudgetsAndCapacity) {
  GraphOracle oracle(city_.graph);
  XarOptions opt;
  opt.kinetic_booking = true;
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle, opt);
  RideId ride = CreateDiagonal(xar);

  // The deadline contract each booking mints, recorded at booking time.
  struct Contract {
    double pickup_deadline_s;
    double dropoff_deadline_s;
  };
  std::map<std::uint32_t, Contract> contracts;

  const double spots[4][4] = {{0.20, 0.20, 0.55, 0.55},
                              {0.30, 0.30, 0.70, 0.70},
                              {0.50, 0.50, 0.85, 0.85},
                              {0.15, 0.15, 0.40, 0.40}};
  std::size_t booked = 0;
  for (int r = 0; r < 4; ++r) {
    RideRequest req = MakeRequest(static_cast<std::uint32_t>(r + 1),
                                  spots[r][0], spots[r][1], spots[r][2],
                                  spots[r][3], kStart);
    std::vector<RideMatch> matches = xar.Search(req);
    if (matches.empty()) continue;
    Result<BookingRecord> booking =
        xar.Book(matches.front().ride, req, matches.front());
    if (!booking.ok() || booking->ride != ride) continue;
    ++booked;
    const double pickup_deadline =
        std::max(req.latest_departure_s, matches.front().eta_source_s) +
        opt.eta_window_slack_s;
    contracts[req.id.value()] = {pickup_deadline,
                                 pickup_deadline + opt.max_onboard_s};

    // (a) The committed via plan honours every recorded contract.
    const Ride* live = xar.GetRide(ride);
    ASSERT_NE(live, nullptr);
    ASSERT_TRUE(PooledRideConsistent(*live));
    for (const ViaPoint& vp : live->via_points) {
      if (!vp.request.valid()) continue;
      auto it = contracts.find(vp.request.value());
      ASSERT_NE(it, contracts.end());
      const double deadline = vp.is_pickup ? it->second.pickup_deadline_s
                                           : it->second.dropoff_deadline_s;
      EXPECT_LE(vp.eta_s, deadline + 1e-6)
          << "request " << vp.request.value()
          << (vp.is_pickup ? " pickup" : " dropoff")
          << " scheduled past its deadline";
    }
    // (b) The persistent tree agrees with an independent re-pricing, at
    // every prefix, and with a from-scratch rebuild.
    const RideSchedule* sched = xar.GetSchedule(ride);
    ASSERT_NE(sched, nullptr);
    EXPECT_TRUE(ScheduleRespectsBudgets(*sched, oracle));
    EXPECT_TRUE(PersistentMatchesRebuild(*sched, oracle));
  }
  ASSERT_GE(booked, 2u) << "scenario did not pool riders";
  EXPECT_GE(xar.pooling_stats().max_pooled_riders, 2u);
}

TEST_F(PoolingPropertyTest, InProgressInsertionKeepsOnboardRidersFeasible) {
  GraphOracle oracle(city_.graph);
  XarOptions opt;
  opt.kinetic_booking = true;
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle, opt);
  RideId ride = CreateDiagonal(xar);

  RideRequest first = MakeRequest(1, 0.20, 0.20, 0.80, 0.80, kStart);
  std::vector<RideMatch> matches = xar.Search(first);
  ASSERT_FALSE(matches.empty());
  ASSERT_TRUE(xar.Book(matches.front().ride, first, matches.front()).ok());

  // Drive past the first rider's pickup: they are now on board.
  const Ride* r = xar.GetRide(ride);
  double pickup_eta = 0;
  for (const ViaPoint& vp : r->via_points) {
    if (vp.request == first.id && vp.is_pickup) pickup_eta = vp.eta_s;
  }
  ASSERT_GT(pickup_eta, 0);
  xar.AdvanceTime(pickup_eta + 60);

  // A second rider books into the moving, occupied vehicle.
  RideRequest second =
      MakeRequest(2, 0.55, 0.55, 0.90, 0.90, pickup_eta + 60);
  matches = xar.Search(second);
  if (matches.empty()) GTEST_SKIP() << "moving ride left the search window";
  Result<BookingRecord> booking =
      xar.Book(matches.front().ride, second, matches.front());
  if (!booking.ok() || booking->ride != ride) {
    GTEST_SKIP() << "in-progress insertion infeasible on this city";
  }

  const RideSchedule* sched = xar.GetSchedule(ride);
  ASSERT_NE(sched, nullptr);
  EXPECT_GE(sched->Onboard(), 1);
  EXPECT_TRUE(PersistentMatchesRebuild(*sched, oracle));
  EXPECT_TRUE(ScheduleRespectsBudgets(*sched, oracle));
  ASSERT_TRUE(PooledRideConsistent(*xar.GetRide(ride)));
  // The first rider's drop-off survives ahead of the vehicle, and the new
  // rider's stops are both still pending.
  bool first_drop_pending = false;
  for (const RideSchedule::PendingRider& p : sched->PendingRiders()) {
    if (p.request == first.id) first_drop_pending = p.onboard;
  }
  EXPECT_TRUE(first_drop_pending);
}

TEST_F(PoolingPropertyTest, NonKineticPathUnchangedFromSeed) {
  GraphOracle oracle(city_.graph);
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle);  // seed opts
  RideId ride = CreateDiagonal(xar);

  const double spots[3][4] = {{0.25, 0.25, 0.55, 0.55},
                              {0.60, 0.60, 0.90, 0.90},
                              {0.35, 0.35, 0.75, 0.75}};
  const double slack = 4 * city_.region->epsilon() +
                       2 * city_.region->options().max_drive_to_landmark_m;
  std::size_t booked = 0;
  for (int r = 0; r < 3; ++r) {
    RideRequest req = MakeRequest(static_cast<std::uint32_t>(r + 1),
                                  spots[r][0], spots[r][1], spots[r][2],
                                  spots[r][3], kStart);
    std::vector<RideMatch> matches = xar.Search(req);
    if (matches.empty()) continue;
    Result<BookingRecord> booking =
        xar.Book(matches.front().ride, req, matches.front());
    if (!booking.ok()) continue;
    ++booked;
    // The splice path's paper bounds are intact: <= 4 shortest paths per
    // booking and the 4-epsilon detour guarantee.
    EXPECT_LE(booking->shortest_path_computations, 4u);
    EXPECT_LE(booking->actual_detour_m,
              booking->estimated_detour_m + slack + 1e-6);
  }
  ASSERT_GT(booked, 0u);

  // No persistent schedule was ever materialized and no pooling counter
  // moved: with kinetic_booking off the new subsystem is inert.
  EXPECT_EQ(xar.GetSchedule(ride), nullptr);
  const PoolingStats stats = xar.pooling_stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.rejections, 0u);
  EXPECT_EQ(stats.removals, 0u);
  EXPECT_EQ(stats.advanced_stops, 0u);
  EXPECT_EQ(stats.kinetic_rides, 0u);
  EXPECT_EQ(stats.retained_orderings, 0u);
}

}  // namespace
}  // namespace xar
