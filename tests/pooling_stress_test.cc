// Pooled bookings and unwindings racing RefreshDiscretization (ISSUE 10):
// like no_show_stress_test but with kinetic_booking on, so every booking
// mutates a persistent per-ride kinetic tree, every unwinding regrafts it,
// and every refresh re-prices and re-homes live schedules under the shard
// locks the bookers are contending for. Under -DXAR_SANITIZE=thread this is
// the data-race detector for the persistent-schedule paths (ctest -L
// stress). Afterwards the seat/occupancy accounting must be exact.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tests/pooling_checkers.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::PooledRideConsistent;
using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Trips(const TestCity& city, std::size_t n,
                            std::uint64_t seed) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

TEST(PoolingStressTest, PooledUnwindingRacesRefreshDiscretization) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarOptions opt;
  opt.kinetic_booking = true;
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle,
                          opt, /*num_shards=*/4);

  // A deliberately tight fleet so riders pool: many bookings per ride means
  // every unwinding regrafts a tree that other threads are inserting into.
  for (const TaxiTrip& t : Trips(city, 120, 80)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    offer.seats = 4;
    offer.detour_limit_m = 6000;
    (void)xar.CreateRide(offer);
  }

  // Ledger of bookings made and NOT successfully unwound, kept by the
  // bookers themselves; `keep` bookings stay aboard to force real pooling.
  std::mutex ledger_mutex;
  std::unordered_map<RideId, int> seats_held;
  std::atomic<std::size_t> bookings{0};
  std::atomic<std::size_t> unwound{0};

  constexpr std::size_t kRefreshes = 4;
  std::vector<std::uint64_t> observed_epochs;

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (std::size_t r = 0; r < kRefreshes; ++r) {
      RefreshStats stats = xar.RefreshDiscretization();
      observed_epochs.push_back(stats.epoch);
    }
  });
  for (int b = 0; b < 3; ++b) {
    threads.emplace_back([&, b] {
      std::vector<TaxiTrip> trips =
          Trips(city, 120, 300 + static_cast<std::uint64_t>(b));
      std::uint32_t next_id = 10000 + 100000 * static_cast<std::uint32_t>(b);
      for (const TaxiTrip& t : trips) {
        RideRequest req;
        req.id = RequestId(next_id++);
        req.source = t.pickup;
        req.destination = t.dropoff;
        req.earliest_departure_s = t.pickup_time_s;
        req.latest_departure_s = t.pickup_time_s + 900;
        Result<BookingRecord> booked = xar.SearchAndBook(req);
        if (!booked.ok()) continue;
        bookings.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(ledger_mutex);
          ++seats_held[booked->ride];
        }
        // A third of the riders stay aboard (pooled); the rest unwind,
        // racing the refresher's re-home of the very tree they live in.
        if (req.id.value() % 3 == 0) continue;
        const bool no_show = (req.id.value() % 2) != 0;
        Status status = no_show ? xar.ReportNoShow(booked->ride, req.id)
                                : xar.CancelBooking(booked->ride, req.id);
        if (status.ok()) {
          unwound.fetch_add(1);
          std::lock_guard<std::mutex> lock(ledger_mutex);
          if (--seats_held[booked->ride] == 0) {
            seats_held.erase(booked->ride);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_GT(bookings.load(), 0u);
  ASSERT_GT(unwound.load(), 0u);

  for (std::size_t i = 1; i < observed_epochs.size(); ++i) {
    EXPECT_LT(observed_epochs[i - 1], observed_epochs[i]);
  }

  // Exact final accounting: every ride's free seats are its total minus the
  // bookings still held on it, and its pooled via plan is consistent even
  // after racing re-homes.
  std::size_t pooled_rides = 0;
  for (const auto& [ride_id, held] : seats_held) {
    Result<Ride> ride = xar.GetRide(ride_id);
    ASSERT_TRUE(ride.ok());
    EXPECT_EQ(ride.value().seats_available + held, ride.value().seats_total)
        << "ride " << ride_id.value();
    EXPECT_TRUE(PooledRideConsistent(ride.value()));
    if (held > 1) ++pooled_rides;
  }

  // The pooling counters agree with the bookers' own tallies exactly.
  const PoolingStats stats = xar.pooling_stats();
  EXPECT_EQ(stats.insertions, bookings.load());
  EXPECT_EQ(stats.removals, unwound.load());
  EXPECT_GE(stats.max_pooled_riders, pooled_rides > 0 ? 2u : 1u);
}

}  // namespace
}  // namespace xar
