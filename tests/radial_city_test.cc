// The radial city generator plus a full-stack sweep over it: the XAR
// pipeline must work unchanged on a non-grid topology.

#include <gtest/gtest.h>

#include <limits>

#include "discretize/region_index.h"
#include "graph/dijkstra.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/spatial_index.h"
#include "sim/simulator.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class RadialCityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadialCityTest, StronglyConnectedForDriving) {
  RadialCityOptions opt;
  opt.seed = GetParam();
  RoadGraph g = GenerateRadialCity(opt);
  ASSERT_GT(g.NumNodes(), opt.spokes * 2);
  DijkstraEngine engine(g);
  auto reachable = engine.NodesWithin(NodeId(0), kInf, Metric::kDriveDistance);
  EXPECT_EQ(reachable.size(), g.NumNodes());
  NodeId far(static_cast<NodeId::underlying_type>(g.NumNodes() - 1));
  EXPECT_LT(engine.Distance(far, NodeId(0), Metric::kDriveDistance), kInf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadialCityTest,
                         ::testing::Values(1, 7, 42));

TEST(RadialCityTest2, ExpectedShape) {
  RadialCityOptions opt;
  opt.rings = 4;
  opt.spokes = 8;
  opt.removed_fraction = 0.0;  // keep every node
  RoadGraph g = GenerateRadialCity(opt);
  EXPECT_EQ(g.NumNodes(), 1u + 4u * 8u);
  // The center is a hub: degree == number of spokes (each two-way).
  EXPECT_EQ(g.OutEdges(NodeId(0)).size(), 8u);
  // Bounds span roughly 2x the outer radius.
  double extent = 2 * 4 * opt.ring_spacing_m;
  EXPECT_NEAR(g.bounds().WidthMeters(), extent, extent * 0.1);
  EXPECT_NEAR(g.bounds().HeightMeters(), extent, extent * 0.1);
}

TEST(RadialCityTest2, DeterministicPerSeed) {
  RadialCityOptions opt;
  opt.seed = 9;
  RoadGraph a = GenerateRadialCity(opt);
  RoadGraph b = GenerateRadialCity(opt);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
}

TEST(RadialCityTest2, FullXarStackRunsOnRadialTopology) {
  RadialCityOptions copt;
  copt.rings = 6;
  copt.spokes = 14;
  copt.seed = 3;
  RoadGraph graph = GenerateRadialCity(copt);
  SpatialNodeIndex spatial(graph);
  DiscretizationOptions dopt;
  dopt.landmarks.num_candidates = 250;
  RegionIndex region = RegionIndex::Build(graph, spatial, dopt);
  ASSERT_GT(region.NumClusters(), 3u);
  GraphOracle oracle(graph);
  XarSystem xar(graph, spatial, region, oracle);

  WorkloadOptions wopt;
  wopt.num_trips = 1500;
  wopt.seed = 4;
  std::vector<TaxiTrip> trips = GenerateTrips(graph.bounds(), wopt);
  SimResult result = SimulateRideSharing(xar, trips);
  EXPECT_EQ(result.requests, trips.size());
  EXPECT_GT(result.matched, 0u);
  // Booking invariants hold on the radial topology too.
  for (const BookingRecord& b : result.bookings) {
    EXPECT_LE(b.pickup_eta_s, b.dropoff_eta_s + 1e-6);
    EXPECT_LE(b.shortest_path_computations, 4u);
    EXPECT_LE(b.walk_m, xar.options().default_walk_limit_m + 1e-6);
  }
}

}  // namespace
}  // namespace xar
