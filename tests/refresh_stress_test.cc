// Refresh-under-load stress: a refresher thread repeatedly rebuilds and
// swaps the discretization while booker / batch-searcher / creator threads
// hammer the sharded system. Afterwards nothing may be lost: every created
// ride is still retrievable, seat accounting is exact (no double-booked or
// leaked seat across re-homing), and the epochs the refresher observed are
// strictly monotone. Run under -DXAR_SANITIZE=thread this is the data-race
// detector for the snapshot-swap path (ctest -L stress).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> Trips(const TestCity& city, std::size_t n,
                            std::uint64_t seed) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

RideRequest ToRequest(const TaxiTrip& t, std::uint32_t id_offset) {
  RideRequest req;
  req.id = RequestId(id_offset + t.id.value());
  req.source = t.pickup;
  req.destination = t.dropoff;
  req.earliest_departure_s = t.pickup_time_s;
  req.latest_departure_s = t.pickup_time_s + 900;
  return req;
}

TEST(RefreshStressTest, RefreshLoopRacingSearchCreateBook) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          /*num_shards=*/4);

  // Initial supply, created before the race so every thread finds matches.
  std::mutex created_mutex;
  std::vector<RideId> created;
  for (const TaxiTrip& t : Trips(city, 250, 80)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    Result<RideId> ride = xar.CreateRide(offer);
    if (ride.ok()) created.push_back(*ride);
  }
  ASSERT_GT(created.size(), 0u);

  // Winner ledger kept by the bookers themselves, independent of system
  // internals: seats per ride plus every (ride, request) pair booked.
  std::mutex ledger_mutex;
  std::unordered_map<RideId, int> booked_seats;
  std::vector<std::pair<RideId, RequestId>> booked_pairs;
  std::atomic<std::size_t> bookings{0};
  std::atomic<std::size_t> searches{0};

  constexpr std::size_t kRefreshes = 4;
  std::vector<std::uint64_t> observed_epochs;

  std::vector<std::thread> threads;
  // Refresher: rebuild + swap, no-op deltas (same graph, new epoch each
  // time), racing everything below.
  threads.emplace_back([&] {
    for (std::size_t r = 0; r < kRefreshes; ++r) {
      RefreshStats stats = xar.RefreshDiscretization();
      observed_epochs.push_back(stats.epoch);
    }
  });
  // Booker threads: optimistic SearchAndBook streams; a refresh mid-flight
  // surfaces as a stale rejection and a re-search round, never as an error
  // other than NotFound.
  for (int b = 0; b < 2; ++b) {
    threads.emplace_back([&, b] {
      for (const TaxiTrip& t :
           Trips(city, 120, 81 + static_cast<std::uint64_t>(b))) {
        Result<BookingRecord> booking = xar.SearchAndBook(
            ToRequest(t, static_cast<std::uint32_t>(10000 * (b + 1))));
        if (booking.ok()) {
          bookings.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(ledger_mutex);
          booked_seats[booking->ride] += booking->seats;
          booked_pairs.emplace_back(booking->ride, booking->request);
        } else {
          EXPECT_EQ(booking.status().code(), StatusCode::kNotFound);
        }
      }
    });
  }
  // Batch searcher: fans waves of searches across the pool mid-refresh.
  threads.emplace_back([&] {
    std::vector<RideRequest> wave;
    for (const TaxiTrip& t : Trips(city, 240, 85)) {
      wave.push_back(ToRequest(t, 50000));
      if (wave.size() == 48) {
        for (const std::vector<RideMatch>& matches : xar.SearchBatch(wave)) {
          (void)matches;
          searches.fetch_add(1, std::memory_order_relaxed);
        }
        wave.clear();
      }
    }
  });
  // Creator: grows the supply while refreshes re-home it.
  threads.emplace_back([&] {
    for (const TaxiTrip& t : Trips(city, 80, 86)) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      Result<RideId> ride = xar.CreateRide(offer);
      if (ride.ok()) {
        std::lock_guard<std::mutex> lock(created_mutex);
        created.push_back(*ride);
      }
    }
  });
  for (std::thread& th : threads) th.join();

  EXPECT_GT(searches.load(), 0u);
  EXPECT_GT(bookings.load(), 0u);

  // Epochs are strictly monotone and fully adopted.
  ASSERT_EQ(observed_epochs.size(), kRefreshes);
  for (std::size_t i = 0; i < observed_epochs.size(); ++i) {
    EXPECT_EQ(observed_epochs[i], i + 1);
  }
  EXPECT_EQ(xar.epoch(), kRefreshes);
  RefreshStats refresh = xar.refresh_stats();
  EXPECT_EQ(refresh.refreshes, kRefreshes);
  EXPECT_EQ(refresh.epoch, kRefreshes);

  // No lost rides: every id handed out is still resolvable, and re-homing
  // neither dropped nor duplicated entries.
  EXPECT_EQ(xar.NumRides(), created.size());
  for (RideId id : created) {
    ASSERT_TRUE(xar.GetRide(id).ok()) << "ride " << id.value() << " lost";
  }

  // No duplicate bookings: each (ride, request) pair won at most once.
  std::unordered_set<std::uint64_t> seen;
  for (const auto& [ride, request] : booked_pairs) {
    std::uint64_t key =
        (static_cast<std::uint64_t>(ride.value()) << 32) | request.value();
    EXPECT_TRUE(seen.insert(key).second)
        << "request " << request.value() << " booked twice on ride "
        << ride.value();
  }

  // Seat accounting stayed exact across every epoch swap.
  for (RideId id : created) {
    Result<Ride> ride = xar.GetRide(id);
    ASSERT_TRUE(ride.ok());
    int booked = 0;
    if (auto it = booked_seats.find(id); it != booked_seats.end()) {
      booked = it->second;
    }
    EXPECT_GE(ride->seats_available, 0);
    EXPECT_EQ(ride->seats_available, ride->seats_total - booked)
        << "ride " << id.value();
  }

  // Retry accounting is consistent with the bookers' own ledger.
  RetryStats retries = xar.retry_stats();
  EXPECT_EQ(retries.booked_first_try + retries.booked_after_research,
            bookings.load());
}

TEST(RefreshStressTest, AsyncRefreshCompletesWhileSearchersRun) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  ConcurrentXarSystem xar(city.graph, *city.spatial, *city.region, oracle, {},
                          /*num_shards=*/2);
  for (const TaxiTrip& t : Trips(city, 120, 90)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)xar.CreateRide(offer);
  }

  std::future<RefreshStats> refresh = xar.RefreshDiscretizationAsync();
  std::size_t matched = 0;
  for (const TaxiTrip& t : Trips(city, 200, 91)) {
    matched += xar.Search(ToRequest(t, 70000)).empty() ? 0 : 1;
  }
  RefreshStats stats = refresh.get();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(xar.epoch(), 1u);
  EXPECT_GT(matched, 0u);
}

}  // namespace
}  // namespace xar
