// Refreshable-discretization suite: rebuild + epoch swap must preserve
// live rides' matchability (no-op refresh is invisible to search), expose
// accurate refresh stats, reject cross-epoch matches as stale, and leave the
// replay driver's matched/created counts untouched when run mid-simulation.

#include <gtest/gtest.h>

#include <vector>

#include "discretize/region_snapshot.h"
#include "sim/parallel_simulator.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class RegionRefreshTest : public ::testing::Test {
 protected:
  RegionRefreshTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {}

  std::vector<TaxiTrip> Trips(std::size_t n, std::uint64_t seed) const {
    WorkloadOptions opt;
    opt.num_trips = n;
    opt.seed = seed;
    return GenerateTrips(city_.graph.bounds(), opt);
  }

  void LoadRides(XarSystem& xar, std::size_t n, std::uint64_t seed) const {
    for (const TaxiTrip& t : Trips(n, seed)) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      (void)xar.CreateRide(offer);
    }
  }

  std::vector<RideRequest> Probes(std::size_t n, std::uint64_t seed) const {
    std::vector<RideRequest> out;
    for (const TaxiTrip& t : Trips(n, seed)) {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 900;
      out.push_back(req);
    }
    return out;
  }

  TestCity& city_;
  XarSystem xar_;
};

// The tentpole differential: a no-op refresh rebuilds identical tables under
// a new epoch, so every live ride must stay exactly as matchable as in a
// fresh system built up front — field for field, across many probes.
TEST_F(RegionRefreshTest, NoOpRefreshPreservesSearchResults) {
  LoadRides(xar_, 300, 21);
  std::vector<RideRequest> probes = Probes(120, 22);

  std::vector<std::vector<RideMatch>> before;
  for (const RideRequest& req : probes) before.push_back(xar_.Search(req));

  RefreshStats stats = xar_.RefreshDiscretization();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(xar_.epoch(), 1u);

  // Differential reference: a fresh system over the same inputs and rides.
  XarSystem fresh(city_.graph, *city_.spatial, *city_.region, *city_.oracle);
  LoadRides(fresh, 300, 21);

  std::size_t total_matches = 0;
  for (std::size_t p = 0; p < probes.size(); ++p) {
    std::vector<RideMatch> after = xar_.Search(probes[p]);
    std::vector<RideMatch> reference = fresh.Search(probes[p]);
    ASSERT_EQ(after.size(), before[p].size()) << "probe " << p;
    ASSERT_EQ(after.size(), reference.size()) << "probe " << p;
    total_matches += after.size();
    for (std::size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i].ride, before[p][i].ride);
      EXPECT_DOUBLE_EQ(after[i].TotalWalkM(), before[p][i].TotalWalkM());
      EXPECT_DOUBLE_EQ(after[i].eta_source_s, before[p][i].eta_source_s);
      EXPECT_DOUBLE_EQ(after[i].detour_estimate_m,
                       before[p][i].detour_estimate_m);
      EXPECT_EQ(after[i].source_cluster, before[p][i].source_cluster);
      EXPECT_EQ(after[i].dest_cluster, before[p][i].dest_cluster);
      // Only the epoch stamp may differ from the fresh-built system.
      EXPECT_EQ(after[i].ride, reference[i].ride);
      EXPECT_DOUBLE_EQ(after[i].detour_estimate_m,
                       reference[i].detour_estimate_m);
      EXPECT_EQ(after[i].epoch, 1u);
      EXPECT_EQ(reference[i].epoch, 0u);
    }
  }
  EXPECT_GT(total_matches, 0u);
}

TEST_F(RegionRefreshTest, RefreshStatsAndEpochAreMonotone) {
  LoadRides(xar_, 50, 31);
  const std::size_t live = xar_.NumActiveRides();
  ASSERT_GT(live, 0u);

  for (std::uint64_t round = 1; round <= 3; ++round) {
    RefreshStats stats = xar_.RefreshDiscretization();
    EXPECT_EQ(stats.epoch, round);
    EXPECT_EQ(stats.refreshes, round);
    EXPECT_EQ(stats.last_rides_rehomed, live);
    EXPECT_EQ(stats.total_rides_rehomed, live * round);
    EXPECT_GE(stats.last_rebuild_ms, 0.0);
  }
  EXPECT_EQ(xar_.epoch(), 3u);
  EXPECT_EQ(xar_.refresh_stats().epoch, 3u);
}

TEST_F(RegionRefreshTest, StaleEpochMatchIsRejectedAndReSearchBooks) {
  LoadRides(xar_, 300, 41);
  std::vector<RideMatch> matches;
  RideRequest hit;
  for (const RideRequest& req : Probes(120, 42)) {
    matches = xar_.Search(req);
    if (!matches.empty()) {
      hit = req;
      break;
    }
  }
  ASSERT_FALSE(matches.empty()) << "workload produced no matchable probe";

  (void)xar_.RefreshDiscretization();

  // The pre-refresh match carries epoch-0 ids; Book must refuse it.
  Result<BookingRecord> stale = xar_.Book(matches[0].ride, hit, matches[0]);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);

  // Re-searching on the new epoch restores the booking path.
  std::vector<RideMatch> rematches = xar_.Search(hit);
  ASSERT_FALSE(rematches.empty());
  EXPECT_EQ(rematches[0].epoch, 1u);
  EXPECT_TRUE(xar_.Book(rematches[0].ride, hit, rematches[0]).ok());
}

TEST_F(RegionRefreshTest, PerturbedGraphRefreshKeepsServing) {
  LoadRides(xar_, 300, 51);

  RoadGraph perturbed = PerturbEdgeWeights(city_.graph, 0.2, 7);
  GraphOracle oracle(perturbed);
  GraphDelta delta;
  delta.graph = &perturbed;
  delta.oracle = &oracle;
  RefreshStats stats = xar_.RefreshDiscretization(delta);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.last_rides_rehomed, xar_.NumActiveRides());

  std::size_t booked = 0;
  for (const RideRequest& req : Probes(120, 52)) {
    std::vector<RideMatch> matches = xar_.Search(req);
    if (matches.empty()) continue;
    Result<BookingRecord> booking = xar_.Book(matches[0].ride, req, matches[0]);
    if (!booking.ok()) continue;
    ++booked;
    EXPECT_GE(booking->actual_detour_m, 0.0);
    const Ride* ride = xar_.GetRide(booking->ride);
    ASSERT_NE(ride, nullptr);
    EXPECT_TRUE(ride->active);
  }
  EXPECT_GT(booked, 0u);
}

// Acceptance criterion: a refresh executed mid-simulation by the parallel
// replay driver yields the same matched/created counts as a run whose
// (identical, since the refresh is a no-op rebuild) index was built up
// front and never swapped.
TEST(RegionRefreshSimTest, MidSimRefreshMatchesUpfrontCounts) {
  TestCity& city = SharedCity();
  WorkloadOptions wopt;
  wopt.num_trips = 400;
  wopt.seed = 11;
  std::vector<TaxiTrip> trips = GenerateTrips(city.graph.bounds(), wopt);

  ParallelSimOptions options;
  options.num_threads = 2;
  options.batch_size = 64;

  GraphOracle oracle_upfront(city.graph);
  ConcurrentXarSystem upfront(city.graph, *city.spatial, *city.region,
                              oracle_upfront, {}, 4);
  SimResult baseline = SimulateRideSharingParallel(upfront, trips, options);

  GraphOracle oracle_refreshed(city.graph);
  ConcurrentXarSystem refreshed(city.graph, *city.spatial, *city.region,
                                oracle_refreshed, {}, 4);
  ParallelSimOptions with_refresh = options;
  with_refresh.refresh_every_waves = 2;
  SimResult mid = SimulateRideSharingParallel(refreshed, trips, with_refresh);

  EXPECT_GE(refreshed.epoch(), 2u);
  EXPECT_GT(baseline.matched, 0u);
  EXPECT_EQ(mid.requests, baseline.requests);
  EXPECT_EQ(mid.matched, baseline.matched);
  EXPECT_EQ(mid.rides_created, baseline.rides_created);
}

}  // namespace
}  // namespace xar
