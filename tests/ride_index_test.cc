#include "match/ride_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "tests/test_helpers.h"
#include "xar/route_utils.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

/// Builds a standalone Ride along the city diagonal (without a XarSystem).
Ride MakeDiagonalRide(TestCity& city, double departure_s,
                      double detour_limit_m = 4000.0) {
  const BoundingBox& b = city.graph.bounds();
  NodeId src = city.spatial->NearestNode(
      {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
       b.min_lng + 0.1 * (b.max_lng - b.min_lng)});
  NodeId dst = city.spatial->NearestNode(
      {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
       b.min_lng + 0.9 * (b.max_lng - b.min_lng)});
  Ride ride;
  ride.id = RideId(0);
  ride.source = src;
  ride.destination = dst;
  ride.departure_time_s = departure_s;
  ride.seats_total = ride.seats_available = 3;
  ride.detour_limit_m = detour_limit_m;
  ride.route = city.oracle->DriveRoute(src, dst);
  BuildCumulativeProfiles(city.graph, ride.route.nodes,
                          &ride.route_cum_time_s, &ride.route_cum_dist_m);
  ride.via_points = {
      ViaPoint{src, departure_s, RequestId::Invalid(), false},
      ViaPoint{dst, departure_s + ride.route_cum_time_s.back(),
               RequestId::Invalid(), false}};
  ride.via_route_index = {0, ride.route.nodes.size() - 1};
  return ride;
}

class RideIndexTest : public ::testing::Test {
 protected:
  RideIndexTest() : city_(SharedCity()), index_(*city_.region, city_.graph) {}

  TestCity& city_;
  RideIndex index_;
};

TEST_F(RideIndexTest, RegistrationBasics) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  const RideRegistration* reg = index_.RegistrationOf(ride.id);
  ASSERT_NE(reg, nullptr);
  EXPECT_FALSE(reg->pass_throughs.empty());
  EXPECT_FALSE(reg->registered_clusters.empty());
  EXPECT_TRUE(std::is_sorted(reg->registered_clusters.begin(),
                             reg->registered_clusters.end()));
  EXPECT_EQ(index_.NumRegisteredRides(), 1u);
}

TEST_F(RideIndexTest, PassThroughEtasWithinRideSpan) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  double arrival = ride.ArrivalTimeS();
  for (const PassThroughCluster& pt :
       index_.RegistrationOf(ride.id)->pass_throughs) {
    EXPECT_GE(pt.eta_s, ride.departure_time_s - 1e-9);
    EXPECT_LE(pt.eta_s, arrival + 1e-9);
    EXPECT_EQ(pt.segment, 0u);  // fresh ride: a single segment
    EXPECT_FALSE(pt.crossed);
  }
}

TEST_F(RideIndexTest, ReachableClustersRespectDetourBudget) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600, /*detour_limit_m=*/2000);
  index_.RegisterRide(ride);
  const RegionIndex& region = *city_.region;
  for (const PassThroughCluster& pt :
       index_.RegistrationOf(ride.id)->pass_throughs) {
    ASSERT_EQ(pt.reachable.size(), pt.reachable_detour_m.size());
    for (std::size_t i = 0; i < pt.reachable.size(); ++i) {
      EXPECT_NE(pt.reachable[i], pt.cluster);
      EXPECT_GE(pt.reachable_detour_m[i], 0.0);
      EXPECT_LE(pt.reachable_detour_m[i], 2000.0 + 1e-9);
      // The reachable cluster is within the budget of the pass-through.
      EXPECT_LE(region.ClusterDistance(pt.cluster, pt.reachable[i]),
                2000.0 + 1e-9);
    }
  }
}

TEST_F(RideIndexTest, SmallerBudgetNeverReachesMore) {
  Ride wide = MakeDiagonalRide(city_, 8 * 3600, 4000);
  Ride narrow = MakeDiagonalRide(city_, 8 * 3600, 500);
  narrow.id = RideId(1);
  index_.RegisterRide(wide);
  index_.RegisterRide(narrow);
  EXPECT_GE(index_.RegistrationOf(wide.id)->registered_clusters.size(),
            index_.RegistrationOf(narrow.id)->registered_clusters.size());
}

TEST_F(RideIndexTest, ListsMatchRegisteredClusters) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  const RideRegistration* reg = index_.RegistrationOf(ride.id);
  // The ride appears in exactly the clusters it claims, nowhere else.
  for (std::size_t c = 0; c < city_.region->NumClusters(); ++c) {
    ClusterId cluster(static_cast<ClusterId::underlying_type>(c));
    bool listed = index_.ListOf(cluster).Contains(ride.id);
    bool claimed =
        std::binary_search(reg->registered_clusters.begin(),
                           reg->registered_clusters.end(), cluster);
    EXPECT_EQ(listed, claimed) << "cluster " << c;
  }
}

TEST_F(RideIndexTest, UnregisterRemovesEverywhere) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  index_.UnregisterRide(ride.id);
  EXPECT_EQ(index_.RegistrationOf(ride.id), nullptr);
  for (std::size_t c = 0; c < city_.region->NumClusters(); ++c) {
    EXPECT_FALSE(
        index_.ListOf(ClusterId(static_cast<ClusterId::underlying_type>(c)))
            .Contains(ride.id));
  }
  // Idempotent.
  index_.UnregisterRide(ride.id);
}

TEST_F(RideIndexTest, AdvanceCrossesOnlyPastClusters) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  double mid = ride.departure_time_s + ride.route.time_s / 2;
  index_.AdvanceRide(ride, mid);
  const RideRegistration* reg = index_.RegistrationOf(ride.id);
  for (const PassThroughCluster& pt : reg->pass_throughs) {
    EXPECT_GE(pt.eta_s, mid);
  }
  // Every cluster still listed has at least one valid support.
  for (ClusterId c : reg->registered_clusters) {
    bool supported = false;
    for (const PassThroughCluster& pt : reg->pass_throughs) {
      supported |= pt.cluster == c ||
                   std::find(pt.reachable.begin(), pt.reachable.end(), c) !=
                       pt.reachable.end();
    }
    EXPECT_TRUE(supported);
    EXPECT_TRUE(index_.ListOf(c).Contains(ride.id));
  }
}

TEST_F(RideIndexTest, AdvancePastArrivalEvictsAll) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  std::size_t listed_before =
      index_.RegistrationOf(ride.id)->registered_clusters.size();
  std::size_t evicted = index_.AdvanceRide(ride, ride.ArrivalTimeS() + 10);
  EXPECT_EQ(evicted, listed_before);
  EXPECT_TRUE(index_.RegistrationOf(ride.id)->pass_throughs.empty());
}

TEST_F(RideIndexTest, AdvanceIsIncremental) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  double t1 = ride.departure_time_s + ride.route.time_s * 0.3;
  double t2 = ride.departure_time_s + ride.route.time_s * 0.6;
  index_.AdvanceRide(ride, t1);
  std::size_t after_t1 =
      index_.RegistrationOf(ride.id)->pass_throughs.size();
  EXPECT_EQ(index_.AdvanceRide(ride, t1), 0u);  // idempotent at same time
  index_.AdvanceRide(ride, t2);
  EXPECT_LE(index_.RegistrationOf(ride.id)->pass_throughs.size(), after_t1);
}

TEST_F(RideIndexTest, NextEventTimeIsEarliestUncrossed) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  double next = index_.NextEventTime(ride.id);
  EXPECT_GE(next, ride.departure_time_s);
  double min_eta = std::numeric_limits<double>::infinity();
  for (const PassThroughCluster& pt :
       index_.RegistrationOf(ride.id)->pass_throughs) {
    min_eta = std::min(min_eta, pt.eta_s);
  }
  EXPECT_DOUBLE_EQ(next, min_eta);
  EXPECT_EQ(index_.NextEventTime(RideId(999)),
            std::numeric_limits<double>::infinity());
}

TEST_F(RideIndexTest, BestSupportAndJointChooserAgreeOnOrdering) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  const RideRegistration* reg = index_.RegistrationOf(ride.id);
  ASSERT_GE(reg->pass_throughs.size(), 2u);
  ClusterId c_early = reg->pass_throughs.front().cluster;
  ClusterId c_late = reg->pass_throughs.back().cluster;
  ASSERT_NE(c_early, c_late);

  const PassThroughCluster* support = index_.BestSupport(ride.id, c_early);
  ASSERT_NE(support, nullptr);

  std::size_t s = 99, d = 99;
  double est = -1;
  LandmarkId lm_early = reg->pass_throughs.front().landmark;
  LandmarkId lm_late = reg->pass_throughs.back().landmark;
  ASSERT_TRUE(index_.ChooseInsertionSegments(ride, c_early, lm_early, c_late,
                                             lm_late, &s, &d, &est));
  EXPECT_LE(s, d);
  EXPECT_GE(est, 0.0);
  // Both clusters are pass-throughs of the single segment: estimate should
  // be modest (within the epsilon scale), not a cross-city detour.
  EXPECT_LT(est, ride.detour_limit_m);
}

TEST_F(RideIndexTest, ReregisterReflectsNewBudget) {
  Ride ride = MakeDiagonalRide(city_, 8 * 3600, 4000);
  index_.RegisterRide(ride);
  std::size_t wide = index_.RegistrationOf(ride.id)->registered_clusters.size();
  ride.detour_used_m = 3600;  // only 400 m of budget left
  index_.ReregisterRide(ride);
  std::size_t narrow =
      index_.RegistrationOf(ride.id)->registered_clusters.size();
  EXPECT_LT(narrow, wide);
}

TEST_F(RideIndexTest, MemoryFootprintTracksRegistrations) {
  std::size_t empty = index_.MemoryFootprint();
  Ride ride = MakeDiagonalRide(city_, 8 * 3600);
  index_.RegisterRide(ride);
  std::size_t loaded = index_.MemoryFootprint();
  EXPECT_GT(loaded, empty);
  index_.UnregisterRide(ride.id);
  EXPECT_LT(index_.MemoryFootprint(), loaded);
}

}  // namespace
}  // namespace xar
