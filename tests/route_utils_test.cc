#include "xar/route_utils.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_helpers.h"

namespace xar {
namespace {

using testing::SharedCity;

TEST(RouteUtilsTest, CumulativeProfilesMatchPathTotals) {
  auto& city = SharedCity();
  DijkstraEngine engine(city.graph);
  Path path = engine.ShortestPath(NodeId(0),
                                  NodeId(static_cast<NodeId::underlying_type>(
                                      city.graph.NumNodes() - 1)),
                                  Metric::kDriveDistance);
  ASSERT_TRUE(path.Found());
  std::vector<double> cum_time, cum_dist;
  BuildCumulativeProfiles(city.graph, path.nodes, &cum_time, &cum_dist);
  ASSERT_EQ(cum_time.size(), path.nodes.size());
  ASSERT_EQ(cum_dist.size(), path.nodes.size());
  EXPECT_DOUBLE_EQ(cum_time.front(), 0.0);
  EXPECT_DOUBLE_EQ(cum_dist.front(), 0.0);
  EXPECT_NEAR(cum_dist.back(), path.length_m, 1e-6);
  EXPECT_NEAR(cum_time.back(), path.time_s, 1e-6);
  for (std::size_t i = 1; i < cum_dist.size(); ++i) {
    EXPECT_GT(cum_dist[i], cum_dist[i - 1]);
    EXPECT_GT(cum_time[i], cum_time[i - 1]);
  }
}

TEST(RouteUtilsTest, SingleNodeProfile) {
  auto& city = SharedCity();
  std::vector<NodeId> route = {NodeId(3)};
  std::vector<double> cum_time, cum_dist;
  BuildCumulativeProfiles(city.graph, route, &cum_time, &cum_dist);
  ASSERT_EQ(cum_time.size(), 1u);
  EXPECT_DOUBLE_EQ(cum_time[0], 0.0);
  EXPECT_DOUBLE_EQ(cum_dist[0], 0.0);
}

TEST(RouteUtilsTest, AppendDropsDuplicatedJunction) {
  std::vector<NodeId> route = {NodeId(1), NodeId(2)};
  AppendPathNodes(&route, {NodeId(2), NodeId(3), NodeId(4)});
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(route[1], NodeId(2));
  EXPECT_EQ(route[2], NodeId(3));
}

TEST(RouteUtilsTest, AppendWithoutSharedJunctionKeepsAll) {
  std::vector<NodeId> route = {NodeId(1)};
  AppendPathNodes(&route, {NodeId(5), NodeId(6)});
  ASSERT_EQ(route.size(), 3u);
}

TEST(RouteUtilsTest, AppendToEmpty) {
  std::vector<NodeId> route;
  AppendPathNodes(&route, {NodeId(9), NodeId(10)});
  ASSERT_EQ(route.size(), 2u);
  AppendPathNodes(&route, {});
  EXPECT_EQ(route.size(), 2u);
}

}  // namespace
}  // namespace xar
