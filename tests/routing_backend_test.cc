// Cross-backend differential suite: Dijkstra, A*, ALT and CH behind the
// RoutingBackend interface must agree — on distances (to FP tolerance), on
// route validity and route length under every metric, on random perturbed
// lattices, and through a graph refresh that rebuilds the contraction
// hierarchy via GraphDelta + RefreshDiscretization.

#include "graph/routing_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr RoutingBackendKind kAllKinds[] = {
    RoutingBackendKind::kDijkstra, RoutingBackendKind::kAStar,
    RoutingBackendKind::kAlt, RoutingBackendKind::kCh};
constexpr Metric kAllMetrics[] = {Metric::kDriveDistance, Metric::kDriveTime,
                                  Metric::kWalkDistance};

RoadGraph MakePerturbedLattice(std::size_t rows, std::size_t cols,
                               std::uint64_t seed) {
  CityOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.seed = seed;
  return PerturbEdgeWeights(GenerateCity(opt), /*spread=*/0.35, seed + 1);
}

std::vector<std::pair<NodeId, NodeId>> SamplePairs(const RoadGraph& g,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(g.NumNodes() - 1));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < n) {
    NodeId a(pick(rng)), b(pick(rng));
    if (a != b) pairs.emplace_back(a, b);
  }
  return pairs;
}

// Backends sum identical edge weights in different orders (CH pre-adds
// shortcut halves), so distances match to rounding, not bit-for-bit.
void ExpectSameDistance(double actual, double expected, const char* what) {
  if (std::isinf(expected)) {
    EXPECT_TRUE(std::isinf(actual)) << what;
  } else {
    EXPECT_NEAR(actual, expected, 1e-6 * std::max(1.0, expected)) << what;
  }
}

// `path` must be a chain from -> to whose hops all exist under `metric` and
// whose cheapest-per-hop weights sum to `expected` (the query's distance).
void ExpectValidRoute(const RoadGraph& g, const Path& path, NodeId from,
                      NodeId to, Metric metric, double expected) {
  if (std::isinf(expected)) {
    EXPECT_FALSE(path.Found());
    return;
  }
  ASSERT_TRUE(path.Found());
  ASSERT_EQ(path.nodes.front(), from);
  ASSERT_EQ(path.nodes.back(), to);
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    double hop = kInf;
    for (const RoadEdge& e : g.OutEdges(path.nodes[i])) {
      if (e.to != path.nodes[i + 1]) continue;
      hop = std::min(hop, RoadGraph::EdgeWeight(e, metric));
    }
    ASSERT_TRUE(std::isfinite(hop))
        << "hop " << i << " (" << path.nodes[i].value() << "->"
        << path.nodes[i + 1].value() << ") has no edge under this metric";
    sum += hop;
  }
  const double tol = 1e-6 * std::max(1.0, expected);
  EXPECT_NEAR(sum, expected, tol);
  const double reported =
      metric == Metric::kDriveTime ? path.time_s : path.length_m;
  EXPECT_NEAR(reported, expected, tol);
}

TEST(RoutingBackendTest, NamesRoundTripThroughParse) {
  for (RoutingBackendKind kind : kAllKinds) {
    auto parsed = ParseRoutingBackend(RoutingBackendName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseRoutingBackend("bellman-ford").has_value());
}

TEST(RoutingBackendTest, AllBackendsAgreeOnPerturbedLattices) {
  struct Lattice {
    std::size_t rows, cols;
    std::uint64_t seed;
  };
  for (const Lattice& spec : {Lattice{11, 11, 301}, Lattice{8, 14, 302}}) {
    RoadGraph g = MakePerturbedLattice(spec.rows, spec.cols, spec.seed);
    auto reference = MakeRoutingBackend(RoutingBackendKind::kDijkstra, g);
    auto pairs = SamplePairs(g, 30, spec.seed + 7);
    for (RoutingBackendKind kind : kAllKinds) {
      auto backend = MakeRoutingBackend(kind, g);
      for (Metric metric : kAllMetrics) {
        for (auto [a, b] : pairs) {
          ExpectSameDistance(backend->Distance(a, b, metric),
                             reference->Distance(a, b, metric),
                             backend->name());
        }
      }
      EXPECT_GT(backend->query_count(), 0u);
      EXPECT_GT(backend->settled_count(), 0u);
      EXPECT_GT(backend->MemoryFootprint(), 0u);
    }
  }
}

TEST(RoutingBackendTest, RoutesAreValidChainsMatchingDistances) {
  RoadGraph g = MakePerturbedLattice(10, 10, 311);
  auto reference = MakeRoutingBackend(RoutingBackendKind::kDijkstra, g);
  auto pairs = SamplePairs(g, 20, 313);
  for (RoutingBackendKind kind : kAllKinds) {
    auto backend = MakeRoutingBackend(kind, g);
    for (Metric metric : kAllMetrics) {
      for (auto [a, b] : pairs) {
        const double expected = reference->Distance(a, b, metric);
        SCOPED_TRACE(::testing::Message()
                     << backend->name() << " " << a.value() << "->"
                     << b.value() << " metric "
                     << static_cast<int>(metric));
        ExpectValidRoute(g, backend->Route(a, b, metric), a, b, metric,
                         expected);
      }
    }
  }
}

TEST(RoutingBackendTest, DistancesToManyMatchesPointToPoint) {
  RoadGraph g = MakePerturbedLattice(9, 9, 321);
  auto ch = MakeRoutingBackend(RoutingBackendKind::kCh, g);
  std::vector<NodeId> targets;
  for (auto [a, b] : SamplePairs(g, 12, 323)) targets.push_back(b);
  for (RoutingBackendKind kind : kAllKinds) {
    auto backend = MakeRoutingBackend(kind, g);
    for (Metric metric : kAllMetrics) {
      std::vector<double> many =
          backend->DistancesToMany(NodeId(0), targets, metric);
      ASSERT_EQ(many.size(), targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i) {
        ExpectSameDistance(many[i], ch->Distance(NodeId(0), targets[i], metric),
                           backend->name());
      }
    }
  }
}

TEST(RoutingBackendTest, ChSettlesFarFewerNodesThanDijkstra) {
  CityOptions opt;
  opt.rows = 20;
  opt.cols = 20;
  opt.seed = 331;
  RoadGraph g = GenerateCity(opt);
  auto dijkstra = MakeRoutingBackend(RoutingBackendKind::kDijkstra, g);
  auto ch = MakeRoutingBackend(RoutingBackendKind::kCh, g);
  for (auto [a, b] : SamplePairs(g, 40, 333)) {
    (void)dijkstra->Distance(a, b, Metric::kDriveDistance);
    (void)ch->Distance(a, b, Metric::kDriveDistance);
  }
  EXPECT_LT(ch->settled_count() * 4, dijkstra->settled_count());
  EXPECT_GT(ch->preprocess_millis(), 0.0);
}

TEST(RoutingBackendTest, PrepareIsIdempotentAndCountsOnce) {
  RoadGraph g = MakePerturbedLattice(8, 8, 341);
  auto ch = MakeRoutingBackend(RoutingBackendKind::kCh, g);
  ch->Prepare(Metric::kDriveDistance);
  const double after_first = ch->preprocess_millis();
  EXPECT_GE(after_first, 0.0);
  ch->Prepare(Metric::kDriveDistance);
  EXPECT_DOUBLE_EQ(ch->preprocess_millis(), after_first);
  const std::size_t queries_before = ch->query_count();
  ch->Prepare(Metric::kDriveTime);  // distinct metric: a second build
  EXPECT_GE(ch->preprocess_millis(), after_first);
  EXPECT_EQ(ch->query_count(), queries_before);  // Prepare is not a query
}

// The oracle path: a GraphDelta refresh swaps in a new graph + CH oracle;
// afterwards the serving oracle must agree with plain Dijkstra on the new
// graph under every metric, and its routes must be valid chains.
TEST(RoutingBackendTest, ChOracleAgreesWithDijkstraAfterRefresh) {
  testing::TestCity city = testing::MakeTestCity(10, 10);
  XarSystem xar(city.graph, *city.spatial, *city.region, *city.oracle);

  RoadGraph perturbed = PerturbEdgeWeights(city.graph, 0.3, 351);
  GraphOracle ch_oracle(perturbed);  // default backend: CH
  EXPECT_STREQ(ch_oracle.backend_name(), "ch");

  GraphDelta delta;
  delta.graph = &perturbed;
  delta.oracle = &ch_oracle;
  RefreshStats stats = xar.RefreshDiscretization(delta);
  EXPECT_EQ(stats.epoch, 1u);
  // Prewarm built all three hierarchies off-thread before the swap.
  EXPECT_GT(stats.last_prewarm_ms, 0.0);
  EXPECT_GT(ch_oracle.backend().preprocess_millis(), 0.0);

  auto reference = MakeRoutingBackend(RoutingBackendKind::kDijkstra, perturbed);
  for (auto [a, b] : SamplePairs(perturbed, 25, 353)) {
    ExpectSameDistance(ch_oracle.DriveDistance(a, b),
                       reference->Distance(a, b, Metric::kDriveDistance),
                       "drive distance after refresh");
    ExpectSameDistance(ch_oracle.DriveTime(a, b),
                       reference->Distance(a, b, Metric::kDriveTime),
                       "drive time after refresh");
    ExpectSameDistance(ch_oracle.WalkDistance(a, b),
                       reference->Distance(a, b, Metric::kWalkDistance),
                       "walk distance after refresh");
    ExpectValidRoute(perturbed, ch_oracle.DriveRoute(a, b), a, b,
                     Metric::kDriveDistance,
                     reference->Distance(a, b, Metric::kDriveDistance));
  }

  // Repeat queries hit the striped cache, not the backend.
  const std::size_t sp_before = ch_oracle.computation_count();
  NodeId a(0), b(static_cast<NodeId::underlying_type>(
                 perturbed.NumNodes() - 1));
  (void)ch_oracle.DriveDistance(a, b);
  const std::size_t sp_after_miss = ch_oracle.computation_count();
  (void)ch_oracle.DriveDistance(a, b);
  EXPECT_EQ(ch_oracle.computation_count(), sp_after_miss);
  EXPECT_GE(sp_after_miss, sp_before);
  EXPECT_GT(ch_oracle.cache_hit_count(), 0u);
}

TEST(RoutingBackendTest, FromStringReportsUnknownNames) {
  for (RoutingBackendKind kind : kAllKinds) {
    Result<RoutingBackendKind> parsed =
        RoutingBackendFromString(RoutingBackendName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  Result<RoutingBackendKind> typo = RoutingBackendFromString("chh");
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.status().code(), StatusCode::kInvalidArgument);
  // The error names the typo and the valid spellings.
  EXPECT_NE(typo.status().ToString().find("chh"), std::string::npos);
  EXPECT_NE(typo.status().ToString().find("dijkstra"), std::string::npos);
}

// The parallel preprocessing contract: the hierarchy (node order, shortcut
// count) and every query answer are BYTE-identical regardless of thread
// count — EXPECT_EQ on doubles, no tolerance.
TEST(RoutingBackendTest, ChHierarchyIdenticalAcrossThreadCounts) {
  const std::size_t kThreadCounts[] = {1, 2, 8};
  for (std::uint64_t seed : {401ull, 402ull}) {
    RoadGraph g = MakePerturbedLattice(9, 12, seed);
    auto pairs = SamplePairs(g, 25, seed + 7);
    for (Metric metric : kAllMetrics) {
      ChOptions base;
      base.preprocess_threads = 1;
      ContractionHierarchy reference(g, metric, base);
      for (std::size_t threads : kThreadCounts) {
        ChOptions opt;
        opt.preprocess_threads = threads;
        ContractionHierarchy ch(g, metric, opt);
        EXPECT_EQ(ch.threads_used(), std::min(threads, g.NumNodes()));
        EXPECT_EQ(ch.NumShortcuts(), reference.NumShortcuts());
        EXPECT_EQ(ch.num_batches(), reference.num_batches());
        for (std::size_t v = 0; v < g.NumNodes(); ++v) {
          ASSERT_EQ(ch.RankOf(NodeId(static_cast<NodeId::underlying_type>(v))),
                    reference.RankOf(
                        NodeId(static_cast<NodeId::underlying_type>(v))))
              << "rank diverged at node " << v << " with " << threads
              << " threads";
        }
        ChQuery query(ch);
        ChQuery ref_query(reference);
        for (auto [a, b] : pairs) {
          EXPECT_EQ(query.Distance(a, b), ref_query.Distance(a, b))
              << a.value() << "->" << b.value() << " @" << threads
              << " threads";
        }
      }
    }
  }
}

// Same contract through the refresh path: a GraphDelta swap onto an oracle
// whose CH builds with 8 threads must serve exactly the distances of a
// 1-thread build on the same perturbed graph.
TEST(RoutingBackendTest, ChRefreshIdenticalAcrossThreadCounts) {
  testing::TestCity city = testing::MakeTestCity(10, 10);
  XarSystem xar(city.graph, *city.spatial, *city.region, *city.oracle);

  RoadGraph perturbed = PerturbEdgeWeights(city.graph, 0.3, 411);
  XarOptions options;
  options.preprocess_threads = 8;
  GraphOracle parallel_oracle(perturbed, /*cache_capacity=*/0,
                              options.routing_backend,
                              options.BackendOptions());

  GraphDelta delta;
  delta.graph = &perturbed;
  delta.oracle = &parallel_oracle;
  RefreshStats stats = xar.RefreshDiscretization(delta);
  EXPECT_EQ(stats.epoch, 1u);

  RoutingBackendOptions serial;
  serial.ch.preprocess_threads = 1;
  auto reference =
      MakeRoutingBackend(RoutingBackendKind::kCh, perturbed, serial);
  for (auto [a, b] : SamplePairs(perturbed, 25, 413)) {
    EXPECT_EQ(parallel_oracle.DriveDistance(a, b),
              reference->Distance(a, b, Metric::kDriveDistance));
    EXPECT_EQ(parallel_oracle.DriveTime(a, b),
              reference->Distance(a, b, Metric::kDriveTime));
    EXPECT_EQ(parallel_oracle.WalkDistance(a, b),
              reference->Distance(a, b, Metric::kWalkDistance));
  }

  // The stats surface reports the parallel builds (one row per metric).
  std::vector<PreprocessTiming> timings =
      parallel_oracle.backend().preprocess_timings();
  ASSERT_EQ(timings.size(), 3u);
  for (const PreprocessTiming& t : timings) {
    EXPECT_GT(t.build_ms, 0.0);
    EXPECT_EQ(t.threads, 8u);
    EXPECT_GT(t.batches, 0u);
  }
}

TEST(RoutingBackendTest, OracleStatsSectionNamesTheBackend) {
  RoadGraph g = MakePerturbedLattice(6, 6, 361);
  GraphOracle oracle(g, /*cache_capacity=*/64, RoutingBackendKind::kAlt);
  (void)oracle.DriveDistance(NodeId(0), NodeId(5));
  (void)oracle.DriveDistance(NodeId(0), NodeId(5));
  std::string table = StatsSectionTable(OracleStatsSection(oracle)).ToString();
  EXPECT_NE(table.find("alt"), std::string::npos);
  EXPECT_NE(table.find("cache_hits"), std::string::npos);
  // The cache policy is named alongside the backend.
  EXPECT_NE(table.find("clock"), std::string::npos);
}

}  // namespace
}  // namespace xar
