#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class SearchBatchTest : public ::testing::Test {
 protected:
  SearchBatchTest()
      : city_(SharedCity()),
        oracle_(city_.graph),
        xar_(city_.graph, *city_.spatial, *city_.region, oracle_, {},
             /*num_shards=*/4) {
    WorkloadOptions opt;
    opt.num_trips = 250;
    opt.seed = 41;
    for (const TaxiTrip& t : GenerateTrips(city_.graph.bounds(), opt)) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      (void)xar_.CreateRide(offer);
    }
  }

  std::vector<RideRequest> Requests(std::size_t n, std::uint64_t seed) const {
    WorkloadOptions opt;
    opt.num_trips = n;
    opt.seed = seed;
    std::vector<RideRequest> requests;
    for (const TaxiTrip& t : GenerateTrips(city_.graph.bounds(), opt)) {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 900;
      requests.push_back(req);
    }
    return requests;
  }

  TestCity& city_;
  GraphOracle oracle_;
  ConcurrentXarSystem xar_;
};

void ExpectSameMatches(const std::vector<RideMatch>& a,
                       const std::vector<RideMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ride, b[i].ride);
    EXPECT_DOUBLE_EQ(a[i].walk_source_m, b[i].walk_source_m);
    EXPECT_DOUBLE_EQ(a[i].walk_dest_m, b[i].walk_dest_m);
    EXPECT_DOUBLE_EQ(a[i].eta_source_s, b[i].eta_source_s);
    EXPECT_DOUBLE_EQ(a[i].eta_dest_s, b[i].eta_dest_s);
    EXPECT_DOUBLE_EQ(a[i].detour_estimate_m, b[i].detour_estimate_m);
    EXPECT_EQ(a[i].source_cluster, b[i].source_cluster);
    EXPECT_EQ(a[i].dest_cluster, b[i].dest_cluster);
    EXPECT_EQ(a[i].pickup_landmark, b[i].pickup_landmark);
    EXPECT_EQ(a[i].dropoff_landmark, b[i].dropoff_landmark);
  }
}

TEST_F(SearchBatchTest, ParallelBatchIdenticalToSerialSearches) {
  std::vector<RideRequest> requests = Requests(120, 50);

  std::vector<std::vector<RideMatch>> serial;
  serial.reserve(requests.size());
  for (const RideRequest& req : requests) serial.push_back(xar_.Search(req));

  std::vector<std::vector<RideMatch>> batch = xar_.SearchBatch(requests);
  ASSERT_EQ(batch.size(), serial.size());
  std::size_t nonempty = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExpectSameMatches(serial[i], batch[i]);
    nonempty += serial[i].empty() ? 0 : 1;
  }
  // The workload must actually exercise matching, or the test is vacuous.
  EXPECT_GT(nonempty, 0u);
}

TEST_F(SearchBatchTest, RepeatedBatchesAreDeterministic) {
  std::vector<RideRequest> requests = Requests(80, 51);
  std::vector<std::vector<RideMatch>> first = xar_.SearchBatch(requests);
  std::vector<std::vector<RideMatch>> second = xar_.SearchBatch(requests);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectSameMatches(first[i], second[i]);
  }
}

TEST_F(SearchBatchTest, TopKOverrideTruncatesEachResult) {
  std::vector<RideRequest> requests = Requests(80, 52);
  constexpr std::size_t kK = 2;
  std::vector<std::vector<RideMatch>> batch = xar_.SearchBatch(requests, kK);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_LE(batch[i].size(), kK);
    ExpectSameMatches(xar_.SearchTopK(requests[i], kK), batch[i]);
  }
}

TEST_F(SearchBatchTest, ShardedSearchMatchesSingleShardSystem) {
  // The same supply loaded into a 1-shard system (id sequence identical to
  // the round-robin 4-shard one) must yield identical search results.
  GraphOracle oracle(city_.graph);
  ConcurrentXarSystem single(city_.graph, *city_.spatial, *city_.region,
                             oracle, {}, /*num_shards=*/1);
  WorkloadOptions opt;
  opt.num_trips = 250;
  opt.seed = 41;
  for (const TaxiTrip& t : GenerateTrips(city_.graph.bounds(), opt)) {
    RideOffer offer;
    offer.source = t.pickup;
    offer.destination = t.dropoff;
    offer.departure_time_s = t.pickup_time_s;
    (void)single.CreateRide(offer);
  }
  for (const RideRequest& req : Requests(100, 53)) {
    ExpectSameMatches(single.Search(req), xar_.Search(req));
  }
}

}  // namespace
}  // namespace xar
