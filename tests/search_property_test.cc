// Property suite for the Search operation semantics: for sweeps of random
// request streams against a loaded system, every returned match satisfies
// the paper's Section VII contract, and top-k behaves like a prefix of the
// full result.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

/// (workload seed, request walk threshold in meters).
using Params = std::tuple<std::uint64_t, double>;

class SearchPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  SearchPropertyTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {
    WorkloadOptions opt;
    opt.num_trips = 800;
    opt.seed = std::get<0>(GetParam());
    for (const TaxiTrip& t : GenerateTrips(city_.graph.bounds(), opt)) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      (void)xar_.CreateRide(offer);
    }
  }

  std::vector<RideRequest> Probes(std::size_t count) {
    WorkloadOptions opt;
    opt.num_trips = count;
    opt.seed = std::get<0>(GetParam()) + 1000;
    std::vector<RideRequest> out;
    for (const TaxiTrip& t : GenerateTrips(city_.graph.bounds(), opt)) {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 900;
      req.walk_limit_m = std::get<1>(GetParam());
      out.push_back(req);
    }
    return out;
  }

  TestCity& city_;
  XarSystem xar_;
};

TEST_P(SearchPropertyTest, EveryMatchSatisfiesTheContract) {
  double walk_limit = std::get<1>(GetParam());
  std::size_t total_matches = 0;
  for (const RideRequest& req : Probes(200)) {
    for (const RideMatch& m : xar_.Search(req)) {
      ++total_matches;
      const Ride* ride = xar_.GetRide(m.ride);
      ASSERT_NE(ride, nullptr);
      // Ride is usable.
      EXPECT_TRUE(ride->active);
      EXPECT_GE(ride->seats_available, req.seats);
      // Walking threshold is strict (paper: "strictly met").
      EXPECT_LE(m.TotalWalkM(), walk_limit + 1e-9);
      EXPECT_GE(m.walk_source_m, 0.0);
      EXPECT_GE(m.walk_dest_m, 0.0);
      // Temporal sanity: pickup within the (slack-widened) window, before
      // the drop-off.
      EXPECT_LE(m.eta_source_s, m.eta_dest_s + 1e-9);
      EXPECT_GE(m.eta_source_s, req.earliest_departure_s -
                                    xar_.options().eta_window_slack_s - 1e-9);
      EXPECT_LE(m.eta_source_s, req.latest_departure_s +
                                    xar_.options().eta_window_slack_s + 1e-9);
      // Detour estimate within the ride's remaining budget.
      EXPECT_GE(m.detour_estimate_m, 0.0);
      EXPECT_LE(m.detour_estimate_m, ride->RemainingDetourBudget() + 1e-9);
      // Clusters and landmarks resolve consistently.
      EXPECT_NE(m.source_cluster, m.dest_cluster);
      EXPECT_EQ(city_.region->ClusterOfLandmark(m.pickup_landmark),
                m.source_cluster);
      EXPECT_EQ(city_.region->ClusterOfLandmark(m.dropoff_landmark),
                m.dest_cluster);
    }
  }
  // The sweep must actually exercise matches for most parameterizations.
  if (walk_limit >= 500) {
    EXPECT_GT(total_matches, 0u);
  }
}

TEST_P(SearchPropertyTest, ResultsSortedByLeastWalking) {
  for (const RideRequest& req : Probes(100)) {
    std::vector<RideMatch> matches = xar_.Search(req);
    for (std::size_t i = 1; i < matches.size(); ++i) {
      EXPECT_LE(matches[i - 1].TotalWalkM(), matches[i].TotalWalkM() + 1e-9);
    }
  }
}

TEST_P(SearchPropertyTest, TopKIsPrefixOfFullResult) {
  for (const RideRequest& req : Probes(60)) {
    std::vector<RideMatch> all = xar_.Search(req);
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{10}}) {
      std::vector<RideMatch> topk = xar_.SearchTopK(req, k);
      ASSERT_EQ(topk.size(), std::min(k, all.size()));
      for (std::size_t i = 0; i < topk.size(); ++i) {
        EXPECT_EQ(topk[i].ride, all[i].ride);
      }
    }
  }
}

TEST_P(SearchPropertyTest, TighterWalkLimitShrinksResults) {
  for (RideRequest req : Probes(60)) {
    req.walk_limit_m = 900;
    std::size_t wide = xar_.Search(req).size();
    req.walk_limit_m = 300;
    std::size_t narrow = xar_.Search(req).size();
    EXPECT_LE(narrow, wide);
  }
}

TEST_P(SearchPropertyTest, SearchIsReadOnly) {
  std::vector<RideRequest> probes = Probes(50);
  std::size_t mem_before = xar_.MemoryFootprint();
  std::size_t rides_before = xar_.NumActiveRides();
  for (const RideRequest& req : probes) (void)xar_.Search(req);
  EXPECT_EQ(xar_.MemoryFootprint(), mem_before);
  EXPECT_EQ(xar_.NumActiveRides(), rides_before);
  // Repeating a search yields identical results.
  std::vector<RideMatch> a = xar_.Search(probes[0]);
  std::vector<RideMatch> b = xar_.Search(probes[0]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ride, b[i].ride);
    EXPECT_DOUBLE_EQ(a[i].detour_estimate_m, b[i].detour_estimate_m);
  }
}

// The 4-epsilon detour guarantee is a property of whatever discretization a
// booking was computed on — so it must survive a refresh onto a *different*
// metric. Perturb every edge weight by a random factor, rebuild the region
// over the perturbed graph, and check bookings against the new region's
// epsilon. (One walk limit is enough to exercise the bound; skip the rest of
// the parameter grid to keep the sweep's runtime flat.)
TEST_P(SearchPropertyTest, DetourGuaranteeHoldsAfterPerturbedRefresh) {
  if (std::get<1>(GetParam()) != 1000.0) {
    GTEST_SKIP() << "guarantee sweep runs at the widest walk limit only";
  }
  RoadGraph perturbed =
      PerturbEdgeWeights(city_.graph, 0.25, std::get<0>(GetParam()));
  GraphOracle oracle(perturbed);
  GraphDelta delta;
  delta.graph = &perturbed;
  delta.oracle = &oracle;
  RefreshStats stats = xar_.RefreshDiscretization(delta);
  ASSERT_EQ(stats.epoch, 1u);

  // Same sweep bound as integration/stress: 4*epsilon from Theorem 6 plus
  // the 2*Delta grid->landmark association slack — but epsilon and Delta of
  // the *rebuilt* region over the perturbed metric.
  const double slack = 4 * xar_.region().epsilon() +
                       2 * xar_.region().options().max_drive_to_landmark_m;
  std::size_t booked = 0;
  for (const RideRequest& req : Probes(60)) {
    std::vector<RideMatch> matches = xar_.Search(req);
    if (matches.empty()) continue;
    Result<BookingRecord> booking =
        xar_.Book(matches.front().ride, req, matches.front());
    if (!booking.ok()) continue;
    ++booked;
    EXPECT_LE(booking->actual_detour_m,
              booking->estimated_detour_m + slack + 1e-6)
        << "request " << req.id.value();
  }
  EXPECT_GT(booked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWalkLimits, SearchPropertyTest,
    ::testing::Combine(::testing::Values(61, 62, 63),
                       ::testing::Values(200.0, 500.0, 1000.0)));

}  // namespace
}  // namespace xar
