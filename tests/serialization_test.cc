#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "discretize/region_index.h"
#include "graph/serialization.h"
#include "tests/test_helpers.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphSerializationTest, RoundTripPreservesStructure) {
  const RoadGraph& original = SharedCity().graph;
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveRoadGraph(original, path).ok());

  Result<RoadGraph> loaded = LoadRoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumNodes(), original.NumNodes());
  ASSERT_EQ(loaded->NumEdges(), original.NumEdges());
  EXPECT_DOUBLE_EQ(loaded->MaxSpeedMps(), original.MaxSpeedMps());
  for (std::size_t u = 0; u < original.NumNodes(); ++u) {
    NodeId n(static_cast<NodeId::underlying_type>(u));
    EXPECT_EQ(loaded->PositionOf(n), original.PositionOf(n));
    auto a = original.OutEdges(n);
    auto b = loaded->OutEdges(n);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].to, b[e].to);
      EXPECT_DOUBLE_EQ(a[e].length_m, b[e].length_m);
      EXPECT_NEAR(a[e].time_s, b[e].time_s, 1e-9);
      EXPECT_EQ(a[e].drivable, b[e].drivable);
      EXPECT_EQ(a[e].walkable, b[e].walkable);
    }
  }
}

TEST(GraphSerializationTest, RejectsMissingAndGarbageFiles) {
  EXPECT_FALSE(LoadRoadGraph(TempPath("does_not_exist.bin")).ok());
  std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a graph", f);
  std::fclose(f);
  EXPECT_FALSE(LoadRoadGraph(path).ok());
}

TEST(RegionSerializationTest, RoundTripPreservesIndex) {
  const RegionIndex& original = *SharedCity().region;
  std::string path = TempPath("region.bin");
  ASSERT_TRUE(original.Save(path).ok());

  Result<RegionIndex> loaded = RegionIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->NumClusters(), original.NumClusters());
  EXPECT_EQ(loaded->landmarks().size(), original.landmarks().size());
  EXPECT_DOUBLE_EQ(loaded->epsilon(), original.epsilon());
  EXPECT_DOUBLE_EQ(loaded->nominal_speed_mps(), original.nominal_speed_mps());
  EXPECT_EQ(loaded->grid().CellCount(), original.grid().CellCount());

  // Spot-check the derived tables grid by grid.
  for (std::size_t g = 0; g < original.grid().CellCount(); g += 17) {
    GridId grid(static_cast<GridId::underlying_type>(g));
    EXPECT_EQ(loaded->NodeOfGrid(grid), original.NodeOfGrid(grid));
    EXPECT_EQ(loaded->LandmarkOfGrid(grid), original.LandmarkOfGrid(grid));
    auto a = original.WalkableClustersOf(grid);
    auto b = loaded->WalkableClustersOf(grid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cluster, b[i].cluster);
      EXPECT_DOUBLE_EQ(a[i].walk_m, b[i].walk_m);
      EXPECT_EQ(a[i].nearest_landmark, b[i].nearest_landmark);
    }
  }
  for (std::size_t a = 0; a < original.NumClusters(); ++a) {
    for (std::size_t b = 0; b < original.NumClusters(); b += 3) {
      ClusterId ca(static_cast<ClusterId::underlying_type>(a));
      ClusterId cb(static_cast<ClusterId::underlying_type>(b));
      EXPECT_DOUBLE_EQ(loaded->ClusterDistance(ca, cb),
                       original.ClusterDistance(ca, cb));
    }
  }
}

TEST(RegionSerializationTest, LoadedIndexDrivesTheRuntime) {
  TestCity& city = SharedCity();
  std::string path = TempPath("region_runtime.bin");
  ASSERT_TRUE(city.region->Save(path).ok());
  Result<RegionIndex> loaded = RegionIndex::Load(path);
  ASSERT_TRUE(loaded.ok());

  // A XarSystem built on the loaded index behaves identically on a
  // create/search/book round.
  GraphOracle oracle_a(city.graph);
  GraphOracle oracle_b(city.graph);
  XarSystem original(city.graph, *city.spatial, *city.region, oracle_a);
  XarSystem restored(city.graph, *city.spatial, *loaded, oracle_b);

  const BoundingBox& b = city.graph.bounds();
  RideOffer offer;
  offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
  offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
  offer.departure_time_s = 8 * 3600;
  ASSERT_TRUE(original.CreateRide(offer).ok());
  ASSERT_TRUE(restored.CreateRide(offer).ok());

  RideRequest req;
  req.id = RequestId(1);
  req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
  req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                     b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
  req.earliest_departure_s = 8 * 3600;
  req.latest_departure_s = 8 * 3600 + 1800;

  std::vector<RideMatch> ma = original.Search(req);
  std::vector<RideMatch> mb = restored.Search(req);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i].ride, mb[i].ride);
    EXPECT_DOUBLE_EQ(ma[i].TotalWalkM(), mb[i].TotalWalkM());
    EXPECT_DOUBLE_EQ(ma[i].detour_estimate_m, mb[i].detour_estimate_m);
  }
}

TEST(RegionSerializationTest, RejectsGraphSnapshotAsRegion) {
  std::string path = TempPath("mixed.bin");
  ASSERT_TRUE(SaveRoadGraph(SharedCity().graph, path).ok());
  EXPECT_FALSE(RegionIndex::Load(path).ok());
}

}  // namespace
}  // namespace xar
