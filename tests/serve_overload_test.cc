// Overload / backpressure suite for the serving layer (ISSUE 7 satellite
// 2): with a queue capacity of 1 and a deliberately stalled worker, further
// requests must be shed with a typed BUSY response, the shed/accepted
// counters must match the offered load exactly, and the system must drain
// back to healthy once the stall clears. Also pins the shutdown half of the
// contract: Stop() joins the in-flight handler instead of abandoning it.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "tests/test_helpers.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace serve {
namespace {

/// A latch the worker hook parks on: the test knows exactly when the worker
/// entered a handler and controls exactly when it may leave.
class WorkerGate {
 public:
  /// Called from the worker hook. The first `stall_count` tasks block until
  /// Release(); later tasks pass through.
  void Enter() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [&] { return released_; });
  }

  void AwaitEntered(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  std::size_t entered_ = 0;
  bool released_ = false;
};

struct OverloadWorld {
  std::unique_ptr<ConcurrentXarSystem> system;
  std::unique_ptr<XarServeServer> server;
  WorkerGate gate;
  std::atomic<bool> stall{true};

  OverloadWorld() {
    testing::TestCity& city = testing::SharedCity();
    system = std::make_unique<ConcurrentXarSystem>(
        city.graph, *city.spatial, *city.region, *city.oracle, XarOptions{},
        /*num_shards=*/1);
    ServeOptions options;
    options.num_workers = 1;       // one queue: deterministic admission
    options.queue_capacity = 1;    // one slot behind the in-flight task
    options.worker_hook_for_test = [this](Verb) {
      if (stall.load(std::memory_order_acquire)) gate.Enter();
    };
    server = std::make_unique<XarServeServer>(*system, options);
  }
  ~OverloadWorld() {
    gate.Release();  // never leave the worker parked
    if (server) server->Stop();
  }
};

TEST(ServeOverload, ShedsWithBusyAndExactCounters) {
  OverloadWorld world;
  ASSERT_TRUE(world.server->Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect(world.server->port()).ok());

  // Tag 1 is popped by the worker immediately and parks in the hook.
  ASSERT_TRUE(client.SendFrame(1, Verb::kStats, {}).ok());
  world.gate.AwaitEntered(1);

  // With the worker parked, the queue holds 0 of 1. The event loop handles
  // all frames of one connection in arrival order, so: tag 2 occupies the
  // single slot, tags 3..5 find the queue full and are shed.
  for (std::uint64_t tag = 2; tag <= 5; ++tag) {
    ASSERT_TRUE(client.SendFrame(tag, Verb::kStats, {}).ok());
  }

  // The BUSY sheds are written from the event loop while the worker is
  // still parked — backpressure must not depend on workers making progress.
  for (std::uint64_t tag = 3; tag <= 5; ++tag) {
    Result<Frame> frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->tag, tag);
    EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kBusy));
  }
  ServeCounters during = world.server->counters();
  EXPECT_EQ(during.accepted, 2u);
  EXPECT_EQ(during.shed, 3u);
  EXPECT_EQ(during.completed, 0u);
  EXPECT_EQ(during.queue_highwater, 1u);

  // Drain: release the stall; both accepted requests complete.
  world.stall.store(false, std::memory_order_release);
  world.gate.Release();
  for (std::uint64_t tag = 1; tag <= 2; ++tag) {
    Result<Frame> frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->tag, tag);
    EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kOk));
  }

  // Healthy again: a fresh request is admitted and served.
  ASSERT_TRUE(
      client.SendFrame(6, Verb::kStats, {'s', 'e', 'r', 'v', 'e'}).ok());
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kOk));
  ServeCounters after = world.server->counters();
  EXPECT_EQ(after.accepted, 3u);
  EXPECT_EQ(after.shed, 3u);
  EXPECT_EQ(after.completed, 3u);
}

TEST(ServeOverload, ShedCountFlowsIntoStatsRegistry) {
  OverloadWorld world;
  world.stall.store(false);  // no stalling in this test
  ASSERT_TRUE(world.server->Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect(world.server->port()).ok());
  // First round trip completes a stats task, so the second snapshot has a
  // latency row for the verb.
  ASSERT_TRUE(client.Stats("serve").ok());
  Result<std::string> stats = client.Stats("serve");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("accepted=2"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("shed=0"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("queue_highwater="), std::string::npos) << *stats;
  // Per-verb latency histograms are registered alongside the counters.
  EXPECT_NE(stats->find("verb=stats"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("p99_us="), std::string::npos) << *stats;
}

TEST(ServeOverload, StopJoinsInFlightHandler) {
  OverloadWorld world;
  ASSERT_TRUE(world.server->Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect(world.server->port()).ok());
  ASSERT_TRUE(client.SendFrame(1, Verb::kStats, {}).ok());
  world.gate.AwaitEntered(1);

  // Stop from another thread: it must wait for the parked handler.
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    world.server->Stop();
    stopped.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(stopped.load(std::memory_order_acquire))
      << "Stop() returned while a handler was still in flight";

  world.stall.store(false, std::memory_order_release);
  world.gate.Release();
  stopper.join();
  EXPECT_TRUE(stopped.load());
  EXPECT_FALSE(world.server->running());

  // The joined handler finished its work: its response was written before
  // the connection came down (the client may read it even now).
  Result<Frame> frame = client.ReadFrame(/*timeout_ms=*/1000);
  if (frame.ok()) {
    EXPECT_EQ(frame->tag, 1u);
    EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kOk));
  }
  EXPECT_EQ(world.server->counters().completed, 1u);

  // Idempotent: a second Stop (and one from this thread) is a no-op.
  world.server->Stop();
  world.server->Stop();
  EXPECT_FALSE(world.server->running());
}

TEST(ServeOverload, QueuedButUnstartedTasksAreDroppedOnStop) {
  OverloadWorld world;
  ASSERT_TRUE(world.server->Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect(world.server->port()).ok());
  ASSERT_TRUE(client.SendFrame(1, Verb::kStats, {}).ok());
  world.gate.AwaitEntered(1);
  ASSERT_TRUE(client.SendFrame(2, Verb::kStats, {}).ok());

  // Wait until tag 2 is actually admitted (accepted counter hits 2);
  // otherwise Stop() could race ahead of the event loop's dispatch.
  while (world.server->counters().accepted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread stopper([&] { world.server->Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  world.stall.store(false, std::memory_order_release);
  world.gate.Release();
  stopper.join();

  // Exactly the in-flight task completed; the queued one was dropped.
  ServeCounters counters = world.server->counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.completed, 1u);
}

}  // namespace
}  // namespace serve
}  // namespace xar
