// Protocol suite for the serving layer (ISSUE 7 satellite 1): framing
// round-trip units plus adversarial inputs — truncated frames, oversized
// length prefixes, interleaved partial reads across multiple connections —
// the server must answer a typed error or close cleanly, never crash or
// desync. The adversarial phase ends with a fuzz-style loop over a seeded
// byte mutator; every assertion carries the reproducing seed (same repro
// contract as differential_fuzz_test):
//   ./serve_protocol_test --gtest_filter='*/Seed<n>'
//
// The stress binary (XAR_SERVE_FUZZ_WIDE, ctest label `stress`, TSan job)
// sweeps a wider seed range with more mutations per seed.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"

namespace xar {
namespace serve {
namespace {

using RawBytes = std::vector<std::uint8_t>;

RawBytes MakeFrame(std::uint64_t tag, std::uint8_t code,
                   const RawBytes& payload) {
  RawBytes bytes;
  AppendFrame(tag, code, payload, &bytes);
  return bytes;
}

// --- Codec round trips (pure units, no sockets) ---------------------------

TEST(FrameCodec, SearchPayloadRoundTrip) {
  SearchPayload p;
  p.rider_id = 0xdeadbeef;
  p.source_lat = 40.7128;
  p.source_lng = -74.0060;
  p.dest_lat = 40.7484;
  p.dest_lng = -73.9857;
  p.earliest_departure_s = 28800.5;
  p.latest_departure_s = 30000.25;
  p.walk_limit_m = 350.0;
  p.top_k = 7;

  RawBytes bytes;
  EncodeSearch(p, &bytes);
  SearchPayload q;
  ASSERT_TRUE(DecodeSearch(bytes.data(), bytes.size(), &q));
  EXPECT_EQ(p.rider_id, q.rider_id);
  EXPECT_EQ(p.source_lat, q.source_lat);
  EXPECT_EQ(p.source_lng, q.source_lng);
  EXPECT_EQ(p.dest_lat, q.dest_lat);
  EXPECT_EQ(p.dest_lng, q.dest_lng);
  EXPECT_EQ(p.earliest_departure_s, q.earliest_departure_s);
  EXPECT_EQ(p.latest_departure_s, q.latest_departure_s);
  EXPECT_EQ(p.walk_limit_m, q.walk_limit_m);
  EXPECT_EQ(p.top_k, q.top_k);

  // Exact-consumption contract: truncation and trailing garbage both fail.
  EXPECT_FALSE(DecodeSearch(bytes.data(), bytes.size() - 1, &q));
  bytes.push_back(0);
  EXPECT_FALSE(DecodeSearch(bytes.data(), bytes.size(), &q));
}

TEST(FrameCodec, BookAndResultRoundTrips) {
  RawBytes bytes;
  EncodeBook({41, 97}, &bytes);
  BookPayload b;
  ASSERT_TRUE(DecodeBook(bytes.data(), bytes.size(), &b));
  EXPECT_EQ(b.rider_id, 41u);
  EXPECT_EQ(b.ride_id, 97u);

  SearchResult sr;
  sr.matches = {{3, 120.5, 600.0, 90.25}, {8, 40.0, 300.0, 10.0}};
  bytes.clear();
  EncodeSearchResult(sr, &bytes);
  SearchResult sr2;
  ASSERT_TRUE(DecodeSearchResult(bytes.data(), bytes.size(), &sr2));
  ASSERT_EQ(sr2.matches.size(), 2u);
  EXPECT_EQ(sr2.matches[0].ride_id, 3u);
  EXPECT_EQ(sr2.matches[0].walk_m, 120.5);
  EXPECT_EQ(sr2.matches[1].detour_m, 10.0);

  BookingResult br{12, 100.0, 900.0, 55.5, 80.0};
  bytes.clear();
  EncodeBookingResult(br, &bytes);
  BookingResult br2;
  ASSERT_TRUE(DecodeBookingResult(bytes.data(), bytes.size(), &br2));
  EXPECT_EQ(br2.ride_id, 12u);
  EXPECT_EQ(br2.dropoff_eta_s, 900.0);

  RefreshResult rr{5, 12.5};
  bytes.clear();
  EncodeRefreshResult(rr, &bytes);
  RefreshResult rr2;
  ASSERT_TRUE(DecodeRefreshResult(bytes.data(), bytes.size(), &rr2));
  EXPECT_EQ(rr2.epoch, 5u);
  EXPECT_EQ(rr2.rebuild_ms, 12.5);
}

TEST(FrameCodec, SearchResultRejectsHostileCount) {
  // A count field claiming far more rows than the payload carries must be
  // rejected up front, not fed to a resize.
  RawBytes bytes;
  ByteWriter w(&bytes);
  w.PutU32(0x00ffffff);  // 16M rows, no row bytes
  SearchResult r;
  EXPECT_FALSE(DecodeSearchResult(bytes.data(), bytes.size(), &r));
}

// --- Incremental decoder ---------------------------------------------------

TEST(FrameDecoder, ReassemblesAcrossPartialFeeds) {
  // Three frames, fed one byte at a time: every frame must pop exactly at
  // its boundary with payload intact.
  RawBytes stream;
  std::vector<Frame> expected;
  for (std::uint64_t tag = 1; tag <= 3; ++tag) {
    RawBytes payload(static_cast<std::size_t>(tag * 7), 0);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(tag * 31 + i);
    }
    RawBytes frame = MakeFrame(tag, static_cast<std::uint8_t>(tag), payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
    expected.push_back(Frame{tag, static_cast<std::uint8_t>(tag), payload});
  }

  FrameDecoder decoder;
  std::vector<Frame> got;
  for (std::uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
    Frame frame;
    while (decoder.Pop(&frame) == FrameDecoder::Next::kFrame) {
      got.push_back(frame);
    }
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tag, expected[i].tag);
    EXPECT_EQ(got[i].code, expected[i].code);
    EXPECT_EQ(got[i].payload, expected[i].payload);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoder, CoalescedFramesPopIndividually) {
  RawBytes stream = MakeFrame(10, 1, {1, 2, 3});
  RawBytes second = MakeFrame(11, 2, {});
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.tag, 10u);
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.tag, 11u);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore);
}

TEST(FrameDecoder, UndersizedBodyLenIsStickyError) {
  FrameDecoder decoder;
  // body_len = 8 < kMinBodyBytes: no room for tag + code.
  RawBytes bad = {8, 0, 0, 0};
  decoder.Feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
  EXPECT_FALSE(decoder.error().empty());

  // Sticky: even a well-formed follow-up frame must not resynchronize.
  RawBytes good = MakeFrame(1, 1, {});
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
}

TEST(FrameDecoder, OversizedBodyLenIsError) {
  FrameDecoder decoder(/*max_body_bytes=*/64);
  RawBytes bad = {65, 0, 0, 0};
  decoder.Feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
}

// --- Live-server fixture ---------------------------------------------------

constexpr std::size_t kShards = 4;

struct ServedWorld {
  std::unique_ptr<ConcurrentXarSystem> system;
  std::unique_ptr<XarServeServer> server;
  std::vector<RideRequest> requests;

  explicit ServedWorld(ServeOptions options = {}, std::size_t num_trips = 120) {
    testing::TestCity& city = testing::SharedCity();
    system = std::make_unique<ConcurrentXarSystem>(
        city.graph, *city.spatial, *city.region, *city.oracle, XarOptions{},
        kShards);
    WorkloadOptions wopt;
    wopt.num_trips = num_trips;
    wopt.seed = 0x5e7fe77e;
    for (const TaxiTrip& t : GenerateTrips(city.graph.bounds(), wopt)) {
      if (t.id.value() % 3 == 0) {
        RideOffer offer;
        offer.source = t.pickup;
        offer.destination = t.dropoff;
        offer.departure_time_s = t.pickup_time_s;
        EXPECT_TRUE(system->CreateRide(offer).ok());
      } else {
        RideRequest req;
        req.id = t.id;
        req.source = t.pickup;
        req.destination = t.dropoff;
        req.earliest_departure_s = t.pickup_time_s;
        req.latest_departure_s = t.pickup_time_s + 1200;
        requests.push_back(req);
      }
    }
    server = std::make_unique<XarServeServer>(*system, options);
    EXPECT_TRUE(server->Start().ok());
  }
  ~ServedWorld() {
    if (server) server->Stop();
  }

  ServeClient Connect() {
    ServeClient client;
    EXPECT_TRUE(client.Connect(server->port()).ok());
    return client;
  }

  static SearchPayload ToPayload(const RideRequest& req) {
    SearchPayload p;
    p.rider_id = req.id.value();
    p.source_lat = req.source.lat;
    p.source_lng = req.source.lng;
    p.dest_lat = req.destination.lat;
    p.dest_lng = req.destination.lng;
    p.earliest_departure_s = req.earliest_departure_s;
    p.latest_departure_s = req.latest_departure_s;
    p.walk_limit_m = req.walk_limit_m;
    return p;
  }
};

TEST(ServeProtocol, SearchThenBookOverSocket) {
  ServedWorld world;
  ServeClient client = world.Connect();

  bool booked = false;
  for (const RideRequest& req : world.requests) {
    Result<SearchResult> found = client.Search(ServedWorld::ToPayload(req));
    ASSERT_TRUE(found.ok()) << found.status().ToString();
    if (found->matches.empty()) continue;
    const MatchRow& best = found->matches.front();
    Result<BookingResult> booking = client.Book(req.id.value(), best.ride_id);
    ASSERT_TRUE(booking.ok()) << booking.status().ToString();
    EXPECT_EQ(booking->ride_id, best.ride_id);
    EXPECT_LE(booking->pickup_eta_s, booking->dropoff_eta_s);
    EXPECT_GE(booking->walk_m, 0.0);
    booked = true;
    break;
  }
  EXPECT_TRUE(booked) << "workload produced no bookable request";

  // Booking a ride that was never searched on this connection is a typed
  // application failure, not a protocol error.
  Result<BookingResult> stale = client.Book(/*rider_id=*/999999, 0);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeProtocol, StatsAndRefreshVerbs) {
  ServedWorld world;
  ServeClient client = world.Connect();

  Result<std::string> all = client.Stats();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_NE(all->find("serve "), std::string::npos);
  EXPECT_NE(all->find("system "), std::string::npos);

  Result<std::string> serve_only = client.Stats("serve");
  ASSERT_TRUE(serve_only.ok());
  EXPECT_NE(serve_only->find("accepted="), std::string::npos);
  EXPECT_EQ(serve_only->find("system "), std::string::npos);

  Result<std::string> unknown = client.Stats("no_such_section");
  ASSERT_EQ(unknown.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(unknown.status().message().find("serve"), std::string::npos);

  const std::uint64_t before = world.system->epoch();
  Result<RefreshResult> refreshed = client.Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed->epoch, before + 1);
  EXPECT_EQ(world.system->epoch(), before + 1);
}

TEST(ServeProtocol, UnknownVerbIsTypedAndRecoverable) {
  ServedWorld world;
  ServeClient client = world.Connect();

  ASSERT_TRUE(client.SendFrame(77, static_cast<Verb>(99), {1, 2, 3}).ok());
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->tag, 77u);
  EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kUnknownVerb));

  // The stream is still framed: the connection keeps working.
  EXPECT_TRUE(client.Stats("serve").ok());
}

TEST(ServeProtocol, MalformedPayloadKeepsConnectionOpen) {
  ServedWorld world;
  ServeClient client = world.Connect();

  ASSERT_TRUE(client.SendFrame(42, Verb::kSearch, {1, 2, 3}).ok());
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->tag, 42u);
  EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kMalformed));

  EXPECT_TRUE(client.Stats("serve").ok());
  EXPECT_GE(world.server->counters().protocol_errors, 1u);
}

TEST(ServeProtocol, NonFiniteCoordinatesAreMalformed) {
  ServedWorld world;
  ServeClient client = world.Connect();

  SearchPayload p = ServedWorld::ToPayload(world.requests.front());
  p.source_lat = std::numeric_limits<double>::quiet_NaN();
  Result<SearchResult> found = client.Search(p);
  EXPECT_EQ(found.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Stats("serve").ok());
}

TEST(ServeProtocol, OversizedLengthPrefixClosesConnection) {
  ServedWorld world;
  ServeClient client = world.Connect();

  const std::uint32_t body_len =
      static_cast<std::uint32_t>(kDefaultMaxBodyBytes + 1);
  std::uint8_t header[4];
  std::memcpy(header, &body_len, 4);
  ASSERT_TRUE(client.SendBytes(header, sizeof(header)).ok());

  // Typed MALFORMED (tag 0: the stream desynced, no frame to correlate)
  // followed by a clean close.
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->tag, 0u);
  EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kMalformed));
  Result<Frame> eof = client.ReadFrame();
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound) << "expected EOF";

  // Server is still healthy for new connections.
  ServeClient fresh = world.Connect();
  EXPECT_TRUE(fresh.Stats("serve").ok());
  EXPECT_GE(world.server->counters().protocol_errors, 1u);
}

TEST(ServeProtocol, UndersizedLengthPrefixClosesConnection) {
  ServedWorld world;
  ServeClient client = world.Connect();

  RawBytes bad = {2, 0, 0, 0};  // body_len 2 < kMinBodyBytes
  ASSERT_TRUE(client.SendBytes(bad.data(), bad.size()).ok());
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->code, static_cast<std::uint8_t>(RespStatus::kMalformed));
  EXPECT_EQ(client.ReadFrame().status().code(), StatusCode::kNotFound);

  ServeClient fresh = world.Connect();
  EXPECT_TRUE(fresh.Stats("serve").ok());
}

TEST(ServeProtocol, TruncatedFrameThenCloseIsHarmless) {
  ServedWorld world;
  {
    ServeClient client = world.Connect();
    RawBytes frame = MakeFrame(9, static_cast<std::uint8_t>(Verb::kStats), {});
    // Send the header plus half the body, then disappear mid-frame.
    ASSERT_TRUE(client.SendBytes(frame.data(), frame.size() - 5).ok());
  }  // destructor closes the socket

  // The half-frame must be discarded with the connection; the server keeps
  // serving.
  ServeClient fresh = world.Connect();
  EXPECT_TRUE(fresh.Stats("serve").ok());
}

TEST(ServeProtocol, InterleavedPartialReadsAcrossConnections) {
  ServedWorld world;

  // Three clients, each with a pipelined pair of requests (STATS + SEARCH),
  // delivered byte-by-byte round-robin so the event loop sees interleaved
  // fragments of three different streams. Per-connection reassembly must
  // keep them apart.
  constexpr std::size_t kClients = 3;
  std::vector<ServeClient> clients;
  std::vector<RawBytes> streams(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.push_back(world.Connect());
    RawBytes stats_payload;  // section name "serve"
    const std::string section = "serve";
    stats_payload.assign(section.begin(), section.end());
    RawBytes frame = MakeFrame(100 + c, static_cast<std::uint8_t>(Verb::kStats),
                               stats_payload);
    RawBytes search_bytes;
    EncodeSearch(ServedWorld::ToPayload(world.requests[c]), &search_bytes);
    RawBytes second = MakeFrame(
        200 + c, static_cast<std::uint8_t>(Verb::kSearch), search_bytes);
    frame.insert(frame.end(), second.begin(), second.end());
    streams[c] = std::move(frame);
  }

  std::size_t offset = 0;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t c = 0; c < kClients; ++c) {
      if (offset >= streams[c].size()) continue;
      any_left = true;
      ASSERT_TRUE(clients[c].SendBytes(&streams[c][offset], 1).ok());
    }
    ++offset;
  }

  for (std::size_t c = 0; c < kClients; ++c) {
    SCOPED_TRACE(::testing::Message() << "client " << c);
    Result<Frame> first = clients[c].ReadFrame();
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    Result<Frame> second = clients[c].ReadFrame();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    // Responses may arrive out of order (different workers); match by tag.
    const Frame& stats = first->tag == 100 + c ? *first : *second;
    const Frame& search = first->tag == 100 + c ? *second : *first;
    ASSERT_EQ(stats.tag, 100 + c);
    ASSERT_EQ(search.tag, 200 + c);
    EXPECT_EQ(stats.code, static_cast<std::uint8_t>(RespStatus::kOk));
    EXPECT_EQ(search.code, static_cast<std::uint8_t>(RespStatus::kOk));
    const std::string text(stats.payload.begin(), stats.payload.end());
    EXPECT_NE(text.find("accepted="), std::string::npos);
    SearchResult result;
    EXPECT_TRUE(DecodeSearchResult(search.payload.data(),
                                   search.payload.size(), &result));
  }
}

// --- Seeded fuzz loop ------------------------------------------------------

#ifdef XAR_SERVE_FUZZ_WIDE
constexpr std::uint64_t kFuzzSeedBegin = 1;
constexpr std::uint64_t kFuzzSeedEnd = 13;  // exclusive
constexpr std::size_t kMutationsPerSeed = 48;
#else
constexpr std::uint64_t kFuzzSeedBegin = 1;
constexpr std::uint64_t kFuzzSeedEnd = 4;  // exclusive
constexpr std::size_t kMutationsPerSeed = 12;
#endif

std::vector<std::uint64_t> FuzzSeeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = kFuzzSeedBegin; s < kFuzzSeedEnd; ++s) {
    seeds.push_back(s);
  }
  return seeds;
}

/// A valid request stream to mutate: one of every verb, realistic payloads.
RawBytes ValidStream(const std::vector<RideRequest>& requests, Rng& rng) {
  RawBytes stream;
  const RideRequest& req =
      requests[rng.NextIndex(requests.size())];
  RawBytes search_bytes;
  EncodeSearch(ServedWorld::ToPayload(req), &search_bytes);
  RawBytes frame = MakeFrame(rng.NextU64(),
                             static_cast<std::uint8_t>(Verb::kSearch),
                             search_bytes);
  stream.insert(stream.end(), frame.begin(), frame.end());

  RawBytes book_bytes;
  EncodeBook({req.id.value(), static_cast<std::uint32_t>(rng.NextIndex(64))},
             &book_bytes);
  frame = MakeFrame(rng.NextU64(), static_cast<std::uint8_t>(Verb::kBook),
                    book_bytes);
  stream.insert(stream.end(), frame.begin(), frame.end());

  const std::string section = rng.Bernoulli(0.5) ? "" : "serve";
  RawBytes stats_payload(section.begin(), section.end());
  frame = MakeFrame(rng.NextU64(), static_cast<std::uint8_t>(Verb::kStats),
                    stats_payload);
  stream.insert(stream.end(), frame.begin(), frame.end());
  return stream;
}

/// Applies one random mutation: flip, insert, delete, or truncate.
void Mutate(RawBytes* bytes, Rng& rng) {
  if (bytes->empty()) return;
  switch (rng.NextIndex(4)) {
    case 0: {  // bit flip
      std::size_t i = rng.NextIndex(bytes->size());
      (*bytes)[i] ^= static_cast<std::uint8_t>(1u << rng.NextIndex(8));
      break;
    }
    case 1: {  // insert a random byte
      std::size_t i = rng.NextIndex(bytes->size() + 1);
      bytes->insert(bytes->begin() + static_cast<std::ptrdiff_t>(i),
                    static_cast<std::uint8_t>(rng.NextU64()));
      break;
    }
    case 2: {  // delete a byte
      std::size_t i = rng.NextIndex(bytes->size());
      bytes->erase(bytes->begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    default:  // truncate
      bytes->resize(rng.NextIndex(bytes->size()) + 1);
      break;
  }
}

class ServeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServeFuzzTest, MutatedStreamsNeverKillTheServer) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "reproducing seed = " << seed);
  ServedWorld world;
  Rng mutator(seed * 0x2545f4914f6cdd1dULL + 1);

  for (std::size_t iter = 0; iter < kMutationsPerSeed; ++iter) {
    SCOPED_TRACE(::testing::Message() << "iteration " << iter);
    RawBytes stream = ValidStream(world.requests, mutator);
    const std::size_t mutations = 1 + mutator.NextIndex(5);
    for (std::size_t m = 0; m < mutations; ++m) Mutate(&stream, mutator);

    ServeClient client;
    ASSERT_TRUE(client.Connect(world.server->port()).ok());
    ASSERT_TRUE(client.SendBytes(stream.data(), stream.size()).ok());

    // Drain whatever comes back (typed responses, a MALFORMED, or nothing
    // at all if the mutation left a partial frame pending). Every response
    // must still be a well-formed frame — a framing error here means the
    // server desynced its write side.
    for (;;) {
      Result<Frame> frame = client.ReadFrame(/*timeout_ms=*/100);
      if (frame.ok()) continue;
      ASSERT_NE(frame.status().code(), StatusCode::kInternal)
          << frame.status().ToString();
      break;  // timeout or clean EOF
    }
    client.Close();

    // Liveness probe: a fresh, well-behaved connection still gets served.
    ServeClient probe;
    ASSERT_TRUE(probe.Connect(world.server->port()).ok());
    Result<std::string> stats = probe.Stats("serve");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  EXPECT_TRUE(world.server->running());
}

INSTANTIATE_TEST_SUITE_P(
#ifdef XAR_SERVE_FUZZ_WIDE
    WideSeeds,
#else
    Tier1Seeds,
#endif
    ServeFuzzTest, ::testing::ValuesIn(FuzzSeeds()),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
      return "Seed" + std::to_string(info.param);
    });

}  // namespace
}  // namespace serve
}  // namespace xar
