#include <gtest/gtest.h>

#include "mmtp/trip_planner.h"
#include "sim/modes.h"
#include "sim/simulator.h"
#include "tests/test_helpers.h"
#include "transit/network_generator.h"
#include "workload/trip_generator.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

std::vector<TaxiTrip> MakeTrips(TestCity& city, std::size_t n,
                                std::uint64_t seed = 55) {
  WorkloadOptions opt;
  opt.num_trips = n;
  opt.seed = seed;
  return GenerateTrips(city.graph.bounds(), opt);
}

TEST(SimulatorTest, ConservationOfRequests) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  std::vector<TaxiTrip> trips = MakeTrips(city, 1500);
  SimResult r = SimulateRideSharing(xar, trips);
  EXPECT_EQ(r.requests, trips.size());
  EXPECT_EQ(r.matched + r.rides_created + r.metrics.requests_unserved,
            r.requests);
  EXPECT_EQ(r.bookings.size(), r.matched);
  EXPECT_EQ(r.metrics.cars_used, r.rides_created);
  EXPECT_GT(r.matched, 0u);
  EXPECT_EQ(r.search_ms.count(), r.requests);
}

TEST(SimulatorTest, BookingsRespectInvariants) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  SimResult r = SimulateRideSharing(xar, MakeTrips(city, 1500));
  for (const BookingRecord& b : r.bookings) {
    EXPECT_LE(b.pickup_eta_s, b.dropoff_eta_s + 1e-6);
    EXPECT_LE(b.shortest_path_computations, 4u);
    EXPECT_GE(b.actual_detour_m, 0.0);
    EXPECT_LE(b.walk_m, xar.options().default_walk_limit_m + 1e-6);
  }
}

TEST(SimulatorTest, LookToBookReducesBookings) {
  TestCity& city = SharedCity();
  std::vector<TaxiTrip> trips = MakeTrips(city, 1200);

  GraphOracle o1(city.graph);
  XarSystem always(city.graph, *city.spatial, *city.region, o1);
  SimOptions book_all;
  book_all.look_to_book = 1;
  SimResult all = SimulateRideSharing(always, trips, book_all);

  GraphOracle o2(city.graph);
  XarSystem rarely(city.graph, *city.spatial, *city.region, o2);
  SimOptions book_tenth;
  book_tenth.look_to_book = 10;
  SimResult tenth = SimulateRideSharing(rarely, trips, book_tenth);

  EXPECT_GT(all.matched, tenth.matched);
}

TEST(SimulatorTest, WalkLimitZeroMatchesNothing) {
  TestCity& city = SharedCity();
  GraphOracle oracle(city.graph);
  XarSystem xar(city.graph, *city.spatial, *city.region, oracle);
  SimOptions opt;
  opt.walk_limit_m = 0.0;
  SimResult r = SimulateRideSharing(xar, MakeTrips(city, 400), opt);
  EXPECT_EQ(r.matched, 0u);
  EXPECT_EQ(r.rides_created + r.metrics.requests_unserved, r.requests);
}

class ModesTest : public ::testing::Test {
 protected:
  ModesTest()
      : city_(SharedCity()),
        timetable_(GenerateTransitNetwork(city_.graph.bounds(), {})),
        planner_(timetable_),
        trips_(MakeTrips(city_, 1200)) {}

  TestCity& city_;
  Timetable timetable_;
  TripPlanner planner_;
  std::vector<TaxiTrip> trips_;
};

TEST_F(ModesTest, TaxiModeOneCarPerServedTrip) {
  GraphOracle oracle(city_.graph);
  ModeMetrics taxi = EvaluateTaxiMode(*city_.spatial, oracle, trips_);
  EXPECT_EQ(taxi.requests_served + taxi.requests_unserved, trips_.size());
  EXPECT_EQ(taxi.cars_used, taxi.requests_served);
  EXPECT_DOUBLE_EQ(taxi.walk_s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(taxi.wait_s.mean(), 0.0);
}

TEST_F(ModesTest, PublicTransportUsesNoCars) {
  ModeMetrics pt = EvaluatePublicTransportMode(planner_, trips_);
  EXPECT_EQ(pt.cars_used, 0u);
  EXPECT_GT(pt.requests_served, trips_.size() * 9 / 10);
  EXPECT_GT(pt.walk_s.mean(), 0.0);
}

TEST_F(ModesTest, RideShareSavesCarsVsTaxi) {
  GraphOracle taxi_oracle(city_.graph);
  ModeMetrics taxi = EvaluateTaxiMode(*city_.spatial, taxi_oracle, trips_);
  GraphOracle rs_oracle(city_.graph);
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, rs_oracle);
  ModeMetrics rs = EvaluateRideShareMode(xar, trips_);
  EXPECT_LT(rs.cars_used, taxi.cars_used);
  // And taxi is at least as fast on average (Fig. 6 ordering).
  EXPECT_LE(taxi.travel_s.mean(), rs.travel_s.mean());
}

TEST_F(ModesTest, RideSharePlusTransitSavesCarsVsRideShare) {
  GraphOracle rs_oracle(city_.graph);
  XarSystem rs_xar(city_.graph, *city_.spatial, *city_.region, rs_oracle);
  ModeMetrics rs = EvaluateRideShareMode(rs_xar, trips_);

  GraphOracle rspt_oracle(city_.graph);
  XarSystem rspt_xar(city_.graph, *city_.spatial, *city_.region, rspt_oracle);
  ModeMetrics rspt =
      EvaluateRideSharePlusTransitMode(planner_, rspt_xar, trips_);

  EXPECT_LT(rspt.cars_used, rs.cars_used);
  EXPECT_EQ(rspt.requests_served + rspt.requests_unserved, trips_.size());
}

TEST_F(ModesTest, RideSharePlusTransitImprovesWalkOverPT) {
  ModeMetrics pt = EvaluatePublicTransportMode(planner_, trips_);
  GraphOracle oracle(city_.graph);
  XarSystem xar(city_.graph, *city_.spatial, *city_.region, oracle);
  ModeMetrics rspt = EvaluateRideSharePlusTransitMode(planner_, xar, trips_);
  EXPECT_LT(rspt.walk_s.mean(), pt.walk_s.mean());
  EXPECT_LT(rspt.travel_s.mean(), pt.travel_s.mean());
}

}  // namespace
}  // namespace xar
