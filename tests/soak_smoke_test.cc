// Tier-1 soak smoke (ISSUE 7 satellite 3), seconds not minutes: N
// concurrent clients drive the serving layer over real sockets replaying a
// fixed workload, and the result must equal a serial XarSystem replay —
// same match lists, same booking outcomes, same final seat accounting.
//
// Phase A (concurrent): every client SEARCHes its slice of the workload.
// Searches are pure, so running them from many sockets at once cannot
// diverge from serial — and the responses are compared row-for-row,
// bit-for-bit against the serial system. XAR_SOAK_SECONDS=<n> stretches
// this phase into a real soak (the bench/soak harness sets it; CI leaves it
// unset and the phase runs once).
//
// Phase B (serialized look-then-book) then books through the socket in a
// deterministic order, so the final booking set is exactly comparable.
//
// A second test exercises the atomic SEARCH_AND_BOOK path from many
// sockets at once, where interleaving makes exact equality meaningless, and
// checks accounting invariants instead (same split as
// differential_fuzz_test). The stress binary (XAR_SOAK_STRESS, label
// `stress`, TSan job) adds a REFRESH thread swapping discretization epochs
// under the concurrent load.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "xar/concurrent_xar.h"
#include "xar/xar_system.h"

namespace xar {
namespace serve {
namespace {

constexpr std::size_t kShards = 4;
#ifdef XAR_SOAK_STRESS
constexpr std::size_t kClients = 8;
constexpr std::size_t kNumTrips = 600;
#else
constexpr std::size_t kClients = 4;
constexpr std::size_t kNumTrips = 240;
#endif

double SoakSeconds() {
  const char* env = std::getenv("XAR_SOAK_SECONDS");
  return env ? std::atof(env) : 0.0;
}

struct Workload {
  std::vector<RideOffer> offers;
  std::vector<RideRequest> requests;
};

Workload MakeWorkload(std::uint64_t seed) {
  WorkloadOptions wopt;
  wopt.num_trips = kNumTrips;
  wopt.seed = seed;
  Workload w;
  for (const TaxiTrip& t : GenerateTrips(testing::SharedCity().graph.bounds(),
                                         wopt)) {
    if (t.id.value() % 3 == 0) {
      RideOffer offer;
      offer.source = t.pickup;
      offer.destination = t.dropoff;
      offer.departure_time_s = t.pickup_time_s;
      w.offers.push_back(offer);
    } else {
      RideRequest req;
      req.id = t.id;
      req.source = t.pickup;
      req.destination = t.dropoff;
      req.earliest_departure_s = t.pickup_time_s;
      req.latest_departure_s = t.pickup_time_s + 1200;
      w.requests.push_back(req);
    }
  }
  return w;
}

SearchPayload ToPayload(const RideRequest& req) {
  SearchPayload p;
  p.rider_id = req.id.value();
  p.source_lat = req.source.lat;
  p.source_lng = req.source.lng;
  p.dest_lat = req.destination.lat;
  p.dest_lng = req.destination.lng;
  p.earliest_departure_s = req.earliest_departure_s;
  p.latest_departure_s = req.latest_departure_s;
  p.walk_limit_m = req.walk_limit_m;
  return p;
}

TEST(SoakSmoke, SocketReplayMatchesSerialSystem) {
  testing::TestCity& city = testing::SharedCity();
  Workload w = MakeWorkload(0xa11ce);
  ASSERT_FALSE(w.offers.empty());
  ASSERT_FALSE(w.requests.empty());

  ConcurrentXarSystem served(city.graph, *city.spatial, *city.region,
                             *city.oracle, XarOptions{}, kShards);
  XarSystem serial(city.graph, *city.spatial, *city.region, *city.oracle);
  for (const RideOffer& offer : w.offers) {
    Result<RideId> a = served.CreateRide(offer);
    Result<RideId> b = serial.CreateRide(offer);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value(), b.value()) << "ride-id assignment diverged";
  }

  XarServeServer server(served);
  ASSERT_TRUE(server.Start().ok());

  // --- Phase A: concurrent pure searches over real sockets ----------------
  // Serial expectations are computed up front: searches mutate nothing, so
  // every socket response during the phase must equal them bit-for-bit no
  // matter how the clients interleave. Comparison happens inside the client
  // threads (gtest assertions are not thread-safe, so mismatches are
  // tallied atomically and asserted after the join).
  std::vector<std::vector<RideMatch>> expected(w.requests.size());
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    expected[i] = serial.Search(w.requests[i]);
  }
  auto matches_expected = [&](std::size_t i, const SearchResult& got) {
    const std::vector<RideMatch>& expect = expected[i];
    if (got.matches.size() != expect.size()) return false;
    for (std::size_t r = 0; r < expect.size(); ++r) {
      if (got.matches[r].ride_id != expect[r].ride.value() ||
          got.matches[r].walk_m != expect[r].TotalWalkM() ||
          got.matches[r].eta_s != expect[r].eta_source_s ||
          got.matches[r].detour_m != expect[r].detour_estimate_m) {
        return false;
      }
    }
    return true;
  };

  const double soak_s = SoakSeconds();
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> searches{0};
  Stopwatch elapsed;
  bool first_pass = true;
  while (first_pass || elapsed.ElapsedSeconds() < soak_s) {
    first_pass = false;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        ServeClient client;
        if (!client.Connect(server.port()).ok()) {
          failures.fetch_add(1);
          return;
        }
        for (std::size_t i = c; i < w.requests.size(); i += kClients) {
          Result<SearchResult> found = client.Search(ToPayload(w.requests[i]));
          if (!found.ok()) {
            failures.fetch_add(1);
            return;
          }
          searches.fetch_add(1, std::memory_order_relaxed);
          if (!matches_expected(i, *found)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u)
      << "concurrent socket searches diverged from the serial replay";
  EXPECT_GE(searches.load(), w.requests.size());

  // --- Phase B: deterministic look-then-book through the socket -----------
  ServeClient booker;
  ASSERT_TRUE(booker.Connect(server.port()).ok());
  std::size_t socket_bookings = 0;
  std::size_t serial_bookings = 0;
  for (const RideRequest& req : w.requests) {
    SCOPED_TRACE(::testing::Message() << "booking request " << req.id.value());
    Result<SearchResult> found = booker.Search(ToPayload(req));
    ASSERT_TRUE(found.ok()) << found.status().ToString();
    std::vector<RideMatch> expect = serial.Search(req);
    ASSERT_EQ(found->matches.size(), expect.size());
    if (expect.empty()) continue;

    Result<BookingResult> via_socket =
        booker.Book(req.id.value(), found->matches.front().ride_id);
    Result<BookingRecord> via_serial =
        serial.Book(expect.front().ride, req, expect.front());
    ASSERT_EQ(via_socket.ok(), via_serial.ok())
        << via_socket.status().ToString();
    if (!via_serial.ok()) continue;
    ++socket_bookings;
    ++serial_bookings;
    EXPECT_EQ(via_socket->ride_id, via_serial->ride.value());
    EXPECT_EQ(via_socket->detour_m, via_serial->actual_detour_m);
    EXPECT_EQ(via_socket->walk_m, via_serial->walk_m);
    EXPECT_EQ(via_socket->pickup_eta_s, via_serial->pickup_eta_s);
    EXPECT_EQ(via_socket->dropoff_eta_s, via_serial->dropoff_eta_s);
  }
  EXPECT_GT(socket_bookings, 0u) << "workload produced no bookings";

  // --- Final state: seat accounting equals the serial replay exactly ------
  ASSERT_EQ(served.NumRides(), serial.NumRides());
  EXPECT_EQ(served.NumActiveRides(), serial.NumActiveRides());
  for (std::size_t id = 0; id < serial.NumRides(); ++id) {
    SCOPED_TRACE(::testing::Message() << "ride " << id);
    Result<Ride> got = served.GetRide(RideId(static_cast<std::uint32_t>(id)));
    const Ride* expect = serial.GetRide(RideId(static_cast<std::uint32_t>(id)));
    ASSERT_TRUE(got.ok());
    ASSERT_NE(expect, nullptr);
    EXPECT_EQ(got->seats_total, expect->seats_total);
    EXPECT_EQ(got->seats_available, expect->seats_available);
    EXPECT_EQ(got->detour_used_m, expect->detour_used_m);
    EXPECT_EQ(got->via_points.size(), expect->via_points.size());
    EXPECT_EQ(got->active, expect->active);
  }

  ServeCounters counters = server.counters();
  EXPECT_EQ(counters.shed, 0u) << "smoke load must not trip admission";
  EXPECT_EQ(counters.protocol_errors, 0u);
  server.Stop();
}

TEST(SoakSmoke, ConcurrentSearchAndBookKeepsSeatAccounting) {
  testing::TestCity& city = testing::SharedCity();
  Workload w = MakeWorkload(0xb0b);

  ConcurrentXarSystem served(city.graph, *city.spatial, *city.region,
                             *city.oracle, XarOptions{}, kShards);
  for (const RideOffer& offer : w.offers) {
    ASSERT_TRUE(served.CreateRide(offer).ok());
  }
  XarServeServer server(served);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> booked{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      ServeClient client;
      if (!client.Connect(server.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= w.requests.size()) return;
        Result<BookingResult> booking =
            client.SearchAndBook(ToPayload(w.requests[i]));
        if (booking.ok()) {
          booked.fetch_add(1, std::memory_order_relaxed);
        } else if (booking.status().code() ==
                   StatusCode::kFailedPrecondition) {
          failed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
#ifdef XAR_SOAK_STRESS
  // Epoch churn under load: discretization refreshes must never corrupt the
  // seat accounting (stale-epoch bookings retry internally).
  std::atomic<bool> refreshing{true};
  std::thread refresher([&] {
    ServeClient client;
    if (!client.Connect(server.port()).ok()) return;
    while (refreshing.load(std::memory_order_acquire)) {
      client.Refresh();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
#endif
  for (std::thread& t : threads) t.join();
#ifdef XAR_SOAK_STRESS
  refreshing.store(false, std::memory_order_release);
  refresher.join();
#endif

  ASSERT_EQ(errors.load(), 0u);
  EXPECT_GT(booked.load(), 0u);
  EXPECT_EQ(booked.load() + failed.load(), w.requests.size());

  // The server's retry accounting covers every request exactly once.
  RetryStats stats = served.retry_stats();
  const std::size_t total_booked =
      stats.booked_first_try + stats.booked_after_research;
  EXPECT_EQ(total_booked, booked.load());
  EXPECT_EQ(total_booked + stats.unmatched, w.requests.size());

  // Every successful booking consumed exactly one seat.
  std::size_t seats_consumed = 0;
  for (std::size_t id = 0; id < served.NumRides(); ++id) {
    Result<Ride> ride = served.GetRide(RideId(static_cast<std::uint32_t>(id)));
    ASSERT_TRUE(ride.ok());
    seats_consumed +=
        static_cast<std::size_t>(ride->seats_total - ride->seats_available);
  }
  EXPECT_EQ(seats_consumed, booked.load());

  ServeCounters counters = server.counters();
  EXPECT_EQ(counters.protocol_errors, 0u);
  EXPECT_EQ(counters.shed, 0u);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace xar
