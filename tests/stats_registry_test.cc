#include "common/stats_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace xar {
namespace {

StatsSection CounterSection(const std::string& name, std::uint64_t value) {
  StatsSection section;
  section.name = name;
  section.AddRow({StatsMetric::Counter("value", value)});
  return section;
}

TEST(StatsMetricTest, FactoriesRenderValues) {
  StatsMetric c = StatsMetric::Counter("requests", 42);
  EXPECT_EQ(c.kind, StatsMetric::Kind::kCounter);
  EXPECT_EQ(c.value, "42");
  StatsMetric g = StatsMetric::Gauge("rate", 0.5, 2);
  EXPECT_EQ(g.kind, StatsMetric::Kind::kGauge);
  EXPECT_EQ(g.value, "0.50");
  StatsMetric t = StatsMetric::Text("backend", "ch");
  EXPECT_EQ(t.kind, StatsMetric::Kind::kText);
  EXPECT_EQ(t.value, "ch");
}

TEST(StatsRegistryTest, SnapshotsReflectLiveState) {
  StatsRegistry registry;
  std::uint64_t counter = 0;
  registry.Register("live", [&] { return CounterSection("live", counter); });
  EXPECT_EQ(registry.Snapshot("live")->rows[0][0].value, "0");
  counter = 7;
  EXPECT_EQ(registry.Snapshot("live")->rows[0][0].value, "7");
  EXPECT_FALSE(registry.Snapshot("missing").has_value());
}

TEST(StatsRegistryTest, SectionsRenderInRegistrationOrder) {
  StatsRegistry registry;
  registry.Register("beta", [] { return CounterSection("beta", 2); });
  registry.Register("alpha", [] { return CounterSection("alpha", 1); });
  std::vector<std::string> names = registry.SectionNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "beta");
  EXPECT_EQ(names[1], "alpha");

  std::string rendered = registry.RenderTables();
  EXPECT_LT(rendered.find("[beta]"), rendered.find("[alpha]"));
}

TEST(StatsRegistryTest, ReRegisterReplacesInPlace) {
  StatsRegistry registry;
  registry.Register("s", [] { return CounterSection("s", 1); });
  registry.Register("s", [] { return CounterSection("s", 2); });
  EXPECT_EQ(registry.SectionNames().size(), 1u);
  EXPECT_EQ(registry.Snapshot("s")->rows[0][0].value, "2");
  registry.Unregister("s");
  EXPECT_TRUE(registry.SectionNames().empty());
}

TEST(StatsRegistryTest, MultiRowSectionRendersOneLinePerRow) {
  StatsSection section;
  section.name = "preprocess";
  section.AddRow({StatsMetric::Text("metric", "drive_m"),
                  StatsMetric::Gauge("build_ms", 12.5, 1)});
  section.AddRow({StatsMetric::Text("metric", "walk_m"),
                  StatsMetric::Gauge("build_ms", 9.0, 1)});
  std::string table = StatsSectionTable(section).ToString();
  EXPECT_NE(table.find("drive_m"), std::string::npos);
  EXPECT_NE(table.find("walk_m"), std::string::npos);
  EXPECT_NE(table.find("build_ms"), std::string::npos);
}

TEST(StatsRegistryTest, ConcurrentRegisterAndSnapshot) {
  StatsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      (void)registry.SnapshotAll();
      (void)registry.RenderTables();
    }
  });
  for (int i = 0; i < 200; ++i) {
    registry.Register("s" + std::to_string(i % 8), [i] {
      return CounterSection("s", static_cast<std::uint64_t>(i));
    });
  }
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(registry.SectionNames().size(), 8u);
}

}  // namespace
}  // namespace xar
