// Scale stress: a large request stream through the full stack with
// continuous tracking — catches index-consistency decay, unbounded memory
// growth and event-queue pathologies that small tests cannot.

#include <gtest/gtest.h>

#include "discretize/region_index.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/spatial_index.h"
#include "sim/simulator.h"
#include "workload/trip_generator.h"
#include "xar/xar_system.h"

namespace xar {
namespace {

TEST(StressTest, ThirtyThousandRequestsThroughTheFullStack) {
  CityOptions copt;
  copt.rows = 24;
  copt.cols = 24;
  copt.seed = 77;
  RoadGraph graph = GenerateCity(copt);
  SpatialNodeIndex spatial(graph);
  DiscretizationOptions dopt;
  dopt.landmarks.num_candidates = 450;
  RegionIndex region = RegionIndex::Build(graph, spatial, dopt);
  GraphOracle oracle(graph);
  XarSystem xar(graph, spatial, region, oracle);

  WorkloadOptions wopt;
  wopt.num_trips = 30000;
  wopt.seed = 78;
  std::vector<TaxiTrip> trips = GenerateTrips(graph.bounds(), wopt);

  SimResult result = SimulateRideSharing(xar, trips);

  // Conservation and sane volumes.
  EXPECT_EQ(result.requests, 30000u);
  EXPECT_EQ(result.matched + result.rides_created +
                result.metrics.requests_unserved,
            result.requests);
  EXPECT_GT(result.matched, result.requests / 4);

  // Every single booking respected the contract.
  double bound = 4 * region.epsilon() +
                 2 * region.options().max_drive_to_landmark_m;
  for (const BookingRecord& b : result.bookings) {
    ASSERT_LE(b.shortest_path_computations, 4u);
    ASSERT_LE(b.walk_m, xar.options().default_walk_limit_m + 1e-6);
    ASSERT_LE(b.actual_detour_m - b.budget_before_m, bound + 1e-6);
    ASSERT_LE(b.pickup_eta_s, b.dropoff_eta_s + 1e-6);
  }

  // After a full day, tracking must have retired the vast majority of
  // rides: the day's final requests arrive near midnight while morning
  // rides finished hours earlier.
  EXPECT_LT(xar.NumActiveRides(), xar.NumRides() / 4);

  // Every cluster list entry still maps to an active, registered ride.
  const RideIndex& index = xar.ride_index();
  for (std::size_t c = 0; c < region.NumClusters(); ++c) {
    for (const PotentialRide& pr :
         index.ListOf(ClusterId(static_cast<ClusterId::underlying_type>(c)))
             .by_ride()) {
      const Ride* ride = xar.GetRide(pr.ride);
      ASSERT_NE(ride, nullptr);
      ASSERT_TRUE(ride->active);
      ASSERT_NE(index.RegistrationOf(pr.ride), nullptr);
    }
  }

  // Search latency stays in the sub-millisecond regime at full load.
  EXPECT_LT(result.search_ms.Percentile(50), 5.0);
}

}  // namespace
}  // namespace xar
