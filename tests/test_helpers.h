#ifndef XAR_TESTS_TEST_HELPERS_H_
#define XAR_TESTS_TEST_HELPERS_H_

#include <memory>

#include "discretize/region_index.h"
#include "graph/generator.h"
#include "graph/oracle.h"
#include "graph/road_graph.h"
#include "graph/spatial_index.h"

namespace xar {
namespace testing {

/// A small synthetic city with its spatial index, discretization and oracle,
/// shared across integration-style tests. Built once per options signature.
struct TestCity {
  RoadGraph graph;
  std::unique_ptr<SpatialNodeIndex> spatial;
  std::unique_ptr<RegionIndex> region;
  std::unique_ptr<GraphOracle> oracle;
};

inline TestCity MakeTestCity(std::size_t rows = 14, std::size_t cols = 14,
                             double delta_m = 300.0) {
  TestCity city;
  CityOptions copt;
  copt.rows = rows;
  copt.cols = cols;
  copt.seed = 99;
  city.graph = GenerateCity(copt);
  city.spatial = std::make_unique<SpatialNodeIndex>(city.graph);
  DiscretizationOptions dopt;
  dopt.delta_m = delta_m;
  dopt.landmarks.num_candidates = 250;
  dopt.landmarks.min_separation_f_m = 200.0;
  city.region = std::make_unique<RegionIndex>(
      RegionIndex::Build(city.graph, *city.spatial, dopt));
  city.oracle = std::make_unique<GraphOracle>(city.graph);
  return city;
}

/// The process-wide default test city (built lazily, reused across suites to
/// keep test runtime down).
inline TestCity& SharedCity() {
  static TestCity* city = new TestCity(MakeTestCity());
  return *city;
}

}  // namespace testing
}  // namespace xar

#endif  // XAR_TESTS_TEST_HELPERS_H_
