#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "graph/dijkstra.h"
#include "graph/text_io.h"
#include "tests/test_helpers.h"
#include "workload/trip_generator.h"
#include "workload/trip_io.h"

namespace xar {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const char* content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(content, f);
  std::fclose(f);
}

TEST(GraphCsvTest, LoadsSmallNetwork) {
  std::string nodes = TempPath("nodes.csv");
  std::string edges = TempPath("edges.csv");
  WriteFile(nodes.c_str(),
            "id,lat,lng\n"
            "# a comment\n"
            "100,40.7000,-74.0000\n"
            "200,40.7090,-74.0000\n"
            "300,40.7090,-73.9880\n");
  WriteFile(edges.c_str(),
            "from,to,length_m,speed_mps,oneway,walkable\n"
            "100,200,-1,10,0,1\n"   // two-way, geometric length (~1 km)
            "200,300,1500,15,1,1\n");  // one-way with explicit length
  Result<RoadGraph> graph = LoadGraphFromCsv(nodes, edges);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumNodes(), 3u);
  // two-way (2 arcs) + one-way (drive arc + walk-back arc) = 4 arcs.
  EXPECT_EQ(graph->NumEdges(), 4u);

  DijkstraEngine engine(*graph);
  EXPECT_NEAR(engine.Distance(NodeId(0), NodeId(1), Metric::kDriveDistance),
              1001, 15);
  EXPECT_NEAR(engine.Distance(NodeId(1), NodeId(2), Metric::kDriveDistance),
              1500, 1e-9);
  // One-way: driving back 2->1 is impossible, walking is fine.
  EXPECT_EQ(engine.Distance(NodeId(2), NodeId(1), Metric::kDriveDistance),
            std::numeric_limits<double>::infinity());
  EXPECT_NEAR(engine.Distance(NodeId(2), NodeId(1), Metric::kWalkDistance),
              1500, 1e-9);
}

TEST(GraphCsvTest, RoundTripPreservesDistances) {
  const RoadGraph& original = testing::SharedCity().graph;
  std::string nodes = TempPath("rt_nodes.csv");
  std::string edges = TempPath("rt_edges.csv");
  ASSERT_TRUE(WriteGraphCsv(original, nodes, edges).ok());
  Result<RoadGraph> loaded = LoadGraphFromCsv(nodes, edges);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumNodes(), original.NumNodes());

  DijkstraEngine orig_engine(original);
  DijkstraEngine load_engine(*loaded);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    NodeId a(static_cast<NodeId::underlying_type>(
        rng.NextIndex(original.NumNodes())));
    NodeId b(static_cast<NodeId::underlying_type>(
        rng.NextIndex(original.NumNodes())));
    for (Metric m : {Metric::kDriveDistance, Metric::kWalkDistance}) {
      EXPECT_NEAR(orig_engine.Distance(a, b, m),
                  load_engine.Distance(a, b, m), 0.05);
    }
  }
}

TEST(GraphCsvTest, RejectsBadInput) {
  std::string nodes = TempPath("bad_nodes.csv");
  std::string edges = TempPath("bad_edges.csv");

  EXPECT_FALSE(LoadGraphFromCsv(TempPath("missing.csv"), edges).ok());

  WriteFile(nodes.c_str(), "id,lat,lng\n1,40.7,-74.0\n1,40.8,-74.0\n");
  WriteFile(edges.c_str(), "from,to,length_m,speed_mps,oneway,walkable\n");
  EXPECT_EQ(LoadGraphFromCsv(nodes, edges).status().code(),
            StatusCode::kInvalidArgument);  // duplicate id

  WriteFile(nodes.c_str(), "id,lat,lng\n1,140.7,-74.0\n");
  EXPECT_FALSE(LoadGraphFromCsv(nodes, edges).ok());  // bad latitude

  WriteFile(nodes.c_str(), "id,lat,lng\n1,40.7,-74.0\n2,40.71,-74.0\n");
  WriteFile(edges.c_str(),
            "from,to,length_m,speed_mps,oneway,walkable\n1,99,100,10,0,1\n");
  EXPECT_FALSE(LoadGraphFromCsv(nodes, edges).ok());  // unknown endpoint

  WriteFile(edges.c_str(),
            "from,to,length_m,speed_mps,oneway,walkable\n1,2,100,0,0,1\n");
  EXPECT_FALSE(LoadGraphFromCsv(nodes, edges).ok());  // zero speed
}

TEST(TripCsvTest, RoundTrip) {
  WorkloadOptions opt;
  opt.num_trips = 200;
  std::vector<TaxiTrip> trips =
      GenerateTrips(BoundingBox{40.70, -74.02, 40.78, -73.93}, opt);
  std::string path = TempPath("trips.csv");
  ASSERT_TRUE(WriteTripsCsv(trips, path).ok());

  Result<std::vector<TaxiTrip>> loaded = LoadTripsFromCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), trips.size());
  for (std::size_t i = 0; i < trips.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id.value(), i);
    EXPECT_NEAR((*loaded)[i].pickup_time_s, trips[i].pickup_time_s, 0.11);
    EXPECT_NEAR((*loaded)[i].pickup.lat, trips[i].pickup.lat, 1e-6);
    EXPECT_NEAR((*loaded)[i].dropoff.lng, trips[i].dropoff.lng, 1e-6);
  }
}

TEST(TripCsvTest, SortsUnorderedInput) {
  std::string path = TempPath("unordered_trips.csv");
  WriteFile(path.c_str(),
            "pickup_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n"
            "3000,40.72,-74.0,40.75,-73.95\n"
            "1000,40.71,-74.0,40.74,-73.96\n"
            "2000,40.73,-74.0,40.76,-73.97\n");
  Result<std::vector<TaxiTrip>> trips = LoadTripsFromCsv(path);
  ASSERT_TRUE(trips.ok());
  ASSERT_EQ(trips->size(), 3u);
  EXPECT_DOUBLE_EQ((*trips)[0].pickup_time_s, 1000);
  EXPECT_DOUBLE_EQ((*trips)[1].pickup_time_s, 2000);
  EXPECT_DOUBLE_EQ((*trips)[2].pickup_time_s, 3000);
}

TEST(TripCsvTest, RejectsMalformedRows) {
  std::string path = TempPath("bad_trips.csv");
  WriteFile(path.c_str(), "header\n1000,40.71\n");
  EXPECT_FALSE(LoadTripsFromCsv(path).ok());
  WriteFile(path.c_str(), "header\n-5,40.71,-74.0,40.74,-73.96\n");
  EXPECT_FALSE(LoadTripsFromCsv(path).ok());
  EXPECT_FALSE(LoadTripsFromCsv(TempPath("no_such_trips.csv")).ok());
}

}  // namespace
}  // namespace xar
