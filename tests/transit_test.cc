#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "transit/csa.h"
#include "transit/network_generator.h"
#include "transit/timetable.h"

namespace xar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

BoundingBox TestBox() { return BoundingBox{40.70, -74.02, 40.76, -73.95}; }

/// Two stops 2 km apart with a single line running between them.
Timetable TwoStopLine(double headway_s = 600) {
  Timetable tt;
  LatLng a{40.71, -74.00};
  StopId s0 = tt.AddStop("A", a);
  StopId s1 = tt.AddStop("B", OffsetMeters(a, 2000, 0));
  TransitRoute route;
  route.name = "L";
  route.stops = {s0, s1};
  route.travel_s = {200.0};
  RouteId r = tt.AddRoute(std::move(route));
  for (double t = 6 * 3600; t < 10 * 3600; t += headway_s) tt.AddTrip(r, t);
  tt.Finalize();
  return tt;
}

TEST(TimetableTest, FinalizeExpandsSortedConnections) {
  Timetable tt = TwoStopLine();
  ASSERT_FALSE(tt.connections().empty());
  for (std::size_t i = 1; i < tt.connections().size(); ++i) {
    EXPECT_LE(tt.connections()[i - 1].departure_s,
              tt.connections()[i].departure_s);
  }
  for (const Connection& c : tt.connections()) {
    EXPECT_LT(c.departure_s, c.arrival_s);
    EXPECT_EQ(c.from, StopId(0));
    EXPECT_EQ(c.to, StopId(1));
  }
}

TEST(TimetableTest, StopsNearRadius) {
  Timetable tt = TwoStopLine();
  LatLng a = tt.GetStop(StopId(0)).position;
  EXPECT_EQ(tt.StopsNear(a, 100).size(), 1u);
  EXPECT_EQ(tt.StopsNear(a, 3000).size(), 2u);
  EXPECT_EQ(tt.StopsNear(OffsetMeters(a, 50000, 0), 100).size(), 0u);
}

TEST(TimetableTest, TransfersWithinRadiusOnly) {
  Timetable tt;
  LatLng a{40.71, -74.00};
  tt.AddStop("A", a);
  tt.AddStop("B", OffsetMeters(a, 100, 0));  // transfer distance
  tt.AddStop("C", OffsetMeters(a, 5000, 0));  // too far
  TransitRoute route;
  route.name = "L";
  route.stops = {StopId(0), StopId(2)};
  route.travel_s = {300.0};
  RouteId r = tt.AddRoute(std::move(route));
  tt.AddTrip(r, 6 * 3600);
  tt.Finalize(250.0);
  EXPECT_EQ(tt.TransfersFrom(StopId(0)).size(), 1u);
  EXPECT_EQ(tt.TransfersFrom(StopId(0)).front().to, StopId(1));
  EXPECT_TRUE(tt.TransfersFrom(StopId(2)).empty());
}

TEST(CsaTest, RidesTheLine) {
  Timetable tt = TwoStopLine();
  ConnectionScanPlanner csa(tt);
  LatLng origin = OffsetMeters(tt.GetStop(StopId(0)).position, -100, 0);
  LatLng dest = OffsetMeters(tt.GetStop(StopId(1)).position, 100, 0);
  Journey j = csa.EarliestArrival(origin, dest, 7 * 3600);
  ASSERT_TRUE(j.feasible);
  EXPECT_EQ(j.Hops(), 0);  // single boarding
  bool has_transit = false;
  for (const JourneyLeg& leg : j.legs) has_transit |= leg.mode == LegMode::kTransit;
  EXPECT_TRUE(has_transit);
  // Leg times are monotone and the journey starts at/after the request.
  EXPECT_GE(j.DepartureS(), 7 * 3600 - 1e-9);
  for (std::size_t i = 0; i < j.legs.size(); ++i) {
    EXPECT_LE(j.legs[i].start_s, j.legs[i].depart_s + 1e-9);
    EXPECT_LE(j.legs[i].depart_s, j.legs[i].arrival_s + 1e-9);
    if (i > 0) {
      EXPECT_GE(j.legs[i].start_s, j.legs[i - 1].arrival_s - 1e-6);
    }
  }
}

TEST(CsaTest, WaitsForNextDeparture) {
  Timetable tt = TwoStopLine(/*headway_s=*/600);
  ConnectionScanPlanner csa(tt);
  // Ask just after a departure: must wait for the next one.
  LatLng origin = tt.GetStop(StopId(0)).position;
  LatLng dest = tt.GetStop(StopId(1)).position;
  Journey just_missed = csa.EarliestArrival(origin, dest, 6 * 3600 + 1);
  Journey on_time = csa.EarliestArrival(origin, dest, 6 * 3600 - 120);
  ASSERT_TRUE(just_missed.feasible);
  ASSERT_TRUE(on_time.feasible);
  EXPECT_GT(just_missed.ArrivalS(), on_time.ArrivalS());
  EXPECT_GT(just_missed.WaitTimeS(), 0.0);
}

TEST(CsaTest, InfeasibleWhenServiceOver) {
  Timetable tt = TwoStopLine();
  ConnectionScanPlanner csa(tt);
  Journey j = csa.EarliestArrival(tt.GetStop(StopId(0)).position,
                                  tt.GetStop(StopId(1)).position, 23 * 3600);
  EXPECT_FALSE(j.feasible);
}

TEST(CsaTest, InfeasibleWhenTooFarToWalk) {
  Timetable tt = TwoStopLine();
  ConnectionScanPlanner csa(tt);
  LatLng far = OffsetMeters(tt.GetStop(StopId(0)).position, -30000, 0);
  EXPECT_FALSE(csa.EarliestArrival(far, tt.GetStop(StopId(1)).position,
                                   7 * 3600)
                   .feasible);
}

/// Reference earliest-arrival: Bellman-Ford-style relaxation over
/// connections repeated until fixpoint (handles transfers), on stop-to-stop
/// level with the same access/egress model as the CSA options.
double BruteForceEarliestArrival(const Timetable& tt, const CsaOptions& opt,
                                 const LatLng& origin, const LatLng& dest,
                                 double departure_s) {
  std::size_t n = tt.stops().size();
  std::vector<double> tau(n, kInf);
  std::vector<bool> by_vehicle(n, false);
  auto walk_s = [&](double meters) {
    return meters * opt.walk_detour_factor / opt.walk_speed_mps;
  };
  for (StopId s : tt.StopsNear(origin, opt.max_access_walk_m)) {
    double w = EquirectangularMeters(origin, tt.GetStop(s).position);
    tau[s.value()] = departure_s + walk_s(w);
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 50) {
    changed = false;
    // Track per-trip boarding feasibility within this pass.
    std::vector<bool> boarded(tt.trips().size(), false);
    for (const Connection& c : tt.connections()) {
      double buffer = by_vehicle[c.from.value()] ? opt.min_transfer_s : 0.0;
      if (boarded[c.trip.value()] ||
          tau[c.from.value()] + buffer <= c.departure_s) {
        boarded[c.trip.value()] = true;
        if (c.arrival_s < tau[c.to.value()]) {
          tau[c.to.value()] = c.arrival_s;
          by_vehicle[c.to.value()] = true;
          changed = true;
        }
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (tau[s] == kInf) continue;
      for (const Timetable::Transfer& tr :
           tt.TransfersFrom(StopId(static_cast<StopId::underlying_type>(s)))) {
        double t = tau[s] + walk_s(tr.walk_m) + opt.min_transfer_s;
        if (t < tau[tr.to.value()]) {
          tau[tr.to.value()] = t;
          by_vehicle[tr.to.value()] = false;
          changed = true;
        }
      }
    }
  }
  double best = kInf;
  for (StopId s : tt.StopsNear(dest, opt.max_access_walk_m)) {
    if (tau[s.value()] == kInf) continue;
    double w = EquirectangularMeters(dest, tt.GetStop(s).position);
    best = std::min(best, tau[s.value()] + walk_s(w));
  }
  return best;
}

/// Property sweep: CSA matches the reference on random queries over the
/// generated network.
class CsaEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsaEquivalenceTest, MatchesBruteForce) {
  TransitNetworkOptions opt;
  opt.subway_lines = 2;
  opt.bus_lines = 3;
  opt.seed = GetParam();
  Timetable tt = GenerateTransitNetwork(TestBox(), opt);
  CsaOptions copt;
  ConnectionScanPlanner csa(tt, copt);
  Rng rng(GetParam() + 100);
  BoundingBox box = TestBox();
  for (int q = 0; q < 12; ++q) {
    LatLng a{rng.Uniform(box.min_lat, box.max_lat),
             rng.Uniform(box.min_lng, box.max_lng)};
    LatLng b{rng.Uniform(box.min_lat, box.max_lat),
             rng.Uniform(box.min_lng, box.max_lng)};
    double t = rng.Uniform(6 * 3600, 20 * 3600);
    Journey j = csa.EarliestArrival(a, b, t);
    double brute = BruteForceEarliestArrival(tt, copt, a, b, t);
    if (!j.feasible) {
      EXPECT_EQ(brute, kInf);
      continue;
    }
    // CSA is a single forward pass; the multi-round reference can only be
    // equal or better, and both agree on single-pass-reachable journeys.
    EXPECT_LE(brute, j.ArrivalS() + 1e-6);
    EXPECT_NEAR(j.ArrivalS(), brute, 120.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsaEquivalenceTest,
                         ::testing::Values(1, 2, 3));

TEST(NetworkGeneratorTest, ProducesServiceAllDay) {
  Timetable tt = GenerateTransitNetwork(TestBox(), {});
  EXPECT_GT(tt.stops().size(), 20u);
  EXPECT_GE(tt.routes().size(), 2u * (3 + 1 + 6));  // both directions
  double first = kInf, last = 0;
  for (const Connection& c : tt.connections()) {
    first = std::min(first, c.departure_s);
    last = std::max(last, c.departure_s);
  }
  EXPECT_LT(first, 6 * 3600.0);
  EXPECT_GT(last, 22 * 3600.0);
  EXPECT_GT(tt.MemoryFootprint(), 0u);
}

TEST(JourneyTest, MetricsFromLegs) {
  Journey j;
  JourneyLeg walk;
  walk.mode = LegMode::kWalk;
  walk.start_s = walk.depart_s = 100;
  walk.arrival_s = 200;
  walk.walk_m = 140;
  JourneyLeg transit;
  transit.mode = LegMode::kTransit;
  transit.start_s = 200;
  transit.depart_s = 260;  // 60 s wait
  transit.arrival_s = 500;
  JourneyLeg ride;
  ride.mode = LegMode::kRideShare;
  ride.start_s = 500;
  ride.depart_s = 530;  // 30 s wait
  ride.arrival_s = 900;
  j.legs = {walk, transit, ride};
  j.feasible = true;
  EXPECT_DOUBLE_EQ(j.TravelTimeS(), 800);
  EXPECT_DOUBLE_EQ(j.WalkMeters(), 140);
  EXPECT_DOUBLE_EQ(j.WaitTimeS(), 90);
  EXPECT_EQ(j.Hops(), 1);  // two boardings
}

}  // namespace
}  // namespace xar
