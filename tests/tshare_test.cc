#include "tshare/tshare_system.h"

#include <gtest/gtest.h>

#include "tests/test_helpers.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class TShareTest : public ::testing::Test {
 protected:
  TShareTest()
      : city_(SharedCity()),
        tshare_(city_.graph, *city_.spatial, *city_.oracle) {}

  RideOffer DiagonalOffer(double t = 8 * 3600.0) const {
    const BoundingBox& b = city_.graph.bounds();
    RideOffer offer;
    offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                    b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
    offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                         b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
    offer.departure_time_s = t;
    return offer;
  }

  RideRequest MidRequest(double t = 8 * 3600.0) const {
    const BoundingBox& b = city_.graph.bounds();
    RideRequest req;
    req.id = RequestId(1);
    req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
    req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 1800;
    return req;
  }

  TestCity& city_;
  TShareSystem tshare_;
};

TEST_F(TShareTest, CreateRideSucceeds) {
  Result<RideId> ride = tshare_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok());
  const Ride* r = tshare_.GetRide(*ride);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->active);
  EXPECT_EQ(tshare_.NumActiveRides(), 1u);
}

TEST_F(TShareTest, SearchFindsCompatibleTaxi) {
  Result<RideId> ride = tshare_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok());
  std::vector<TShareMatch> matches = tshare_.Search(MidRequest());
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches.front().ride, *ride);
  EXPECT_GE(matches.front().detour_m, 0.0);
  EXPECT_LE(matches.front().detour_m,
            tshare_.GetRide(*ride)->detour_limit_m + 1e-9);
}

TEST_F(TShareTest, SearchDetourIsExact) {
  Result<RideId> ride = tshare_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok());
  RideRequest req = MidRequest();
  std::vector<TShareMatch> matches = tshare_.Search(req);
  ASSERT_FALSE(matches.empty());
  const TShareMatch& m = matches.front();
  // Booking the match must increase the route length by (nearly) exactly
  // the detour the search computed: T-Share verifies with real distances.
  double before = tshare_.GetRide(*ride)->route.length_m;
  Result<BookingRecord> booking = tshare_.Book(m.ride, req, m);
  ASSERT_TRUE(booking.ok());
  double after = tshare_.GetRide(*ride)->route.length_m;
  EXPECT_NEAR(after - before, m.detour_m, 1.0);
}

TEST_F(TShareTest, EarlyExitReturnsAtMostK) {
  for (int i = 0; i < 6; ++i) {
    RideOffer offer = DiagonalOffer(8 * 3600.0 + i * 30);
    ASSERT_TRUE(tshare_.CreateRide(offer).ok());
  }
  EXPECT_LE(tshare_.Search(MidRequest(), 2).size(), 2u);
  EXPECT_GE(tshare_.Search(MidRequest(), 0).size(), 3u);
}

TEST_F(TShareTest, TimeWindowFiltersTaxis) {
  ASSERT_TRUE(tshare_.CreateRide(DiagonalOffer(8 * 3600.0)).ok());
  EXPECT_TRUE(tshare_.Search(MidRequest(20 * 3600.0)).empty());
}

TEST_F(TShareTest, BookingConsumesSeatAndBudget) {
  RideOffer offer = DiagonalOffer();
  offer.seats = 1;
  Result<RideId> ride = tshare_.CreateRide(offer);
  ASSERT_TRUE(ride.ok());
  RideRequest req = MidRequest();
  std::vector<TShareMatch> matches = tshare_.Search(req);
  ASSERT_FALSE(matches.empty());
  ASSERT_TRUE(tshare_.Book(matches.front().ride, req, matches.front()).ok());

  const Ride* r = tshare_.GetRide(*ride);
  EXPECT_EQ(r->seats_available, 0);
  EXPECT_EQ(r->via_points.size(), 4u);
  // Via-point order along the route must be monotone and point at the
  // right nodes.
  for (std::size_t i = 0; i + 1 < r->via_route_index.size(); ++i) {
    EXPECT_LE(r->via_route_index[i], r->via_route_index[i + 1]);
  }
  for (std::size_t i = 0; i < r->via_points.size(); ++i) {
    EXPECT_EQ(r->route.nodes[r->via_route_index[i]], r->via_points[i].node);
  }
  // Seats exhausted => no longer matched.
  RideRequest req2 = MidRequest();
  req2.id = RequestId(2);
  for (const TShareMatch& m : tshare_.Search(req2)) {
    EXPECT_NE(m.ride, *ride);
  }
}

TEST_F(TShareTest, LazySearchCountsShortestPaths) {
  ASSERT_TRUE(tshare_.CreateRide(DiagonalOffer()).ok());
  std::size_t before = tshare_.search_sp_count();
  (void)tshare_.Search(MidRequest());
  EXPECT_GT(tshare_.search_sp_count(), before);
}

TEST_F(TShareTest, HaversineSearchOracleVariant) {
  HaversineOracle haversine(city_.graph);
  TShareSystem fast(city_.graph, *city_.spatial, *city_.oracle, {},
                    &haversine);
  ASSERT_TRUE(fast.CreateRide(DiagonalOffer()).ok());
  std::vector<TShareMatch> matches = fast.Search(MidRequest());
  EXPECT_FALSE(matches.empty());
  // Booking still uses real routes (haversine is search-only).
  RideRequest req = MidRequest();
  EXPECT_TRUE(fast.Book(matches.front().ride, req, matches.front()).ok());
}

TEST_F(TShareTest, AdvanceTimeRetiresFinishedRides) {
  Result<RideId> ride = tshare_.CreateRide(DiagonalOffer(8 * 3600.0));
  ASSERT_TRUE(ride.ok());
  tshare_.AdvanceTime(tshare_.GetRide(*ride)->ArrivalTimeS() + 1.0);
  EXPECT_FALSE(tshare_.GetRide(*ride)->active);
  EXPECT_EQ(tshare_.NumActiveRides(), 0u);
  EXPECT_TRUE(tshare_.Search(MidRequest()).empty());
}

TEST_F(TShareTest, GridCapLimitsExploration) {
  TShareOptions opt;
  opt.max_grids_explored = 1;  // only the origin cell
  TShareSystem capped(city_.graph, *city_.spatial, *city_.oracle, opt);
  // A ride that passes nowhere near the request origin cell can't be found.
  ASSERT_TRUE(capped.CreateRide(DiagonalOffer()).ok());
  const BoundingBox& b = city_.graph.bounds();
  RideRequest req = MidRequest();
  req.source = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                b.min_lng + 0.1 * (b.max_lng - b.min_lng)};  // off-route
  EXPECT_TRUE(capped.Search(req).empty());
}

TEST_F(TShareTest, MemoryFootprintGrows) {
  std::size_t empty = tshare_.MemoryFootprint();
  ASSERT_TRUE(tshare_.CreateRide(DiagonalOffer()).ok());
  EXPECT_GT(tshare_.MemoryFootprint(), empty);
}

}  // namespace
}  // namespace xar
