#include <gtest/gtest.h>

#include <algorithm>

#include "geo/latlng.h"
#include "workload/trip_generator.h"

namespace xar {
namespace {

BoundingBox TestBox() { return BoundingBox{40.70, -74.02, 40.78, -73.93}; }

TEST(WorkloadTest, GeneratesRequestedCount) {
  WorkloadOptions opt;
  opt.num_trips = 500;
  std::vector<TaxiTrip> trips = GenerateTrips(TestBox(), opt);
  EXPECT_EQ(trips.size(), 500u);
}

TEST(WorkloadTest, SortedByPickupTimeWithDenseIds) {
  WorkloadOptions opt;
  opt.num_trips = 400;
  std::vector<TaxiTrip> trips = GenerateTrips(TestBox(), opt);
  for (std::size_t i = 0; i < trips.size(); ++i) {
    EXPECT_EQ(trips[i].id.value(), i);
    if (i > 0) {
      EXPECT_GE(trips[i].pickup_time_s, trips[i - 1].pickup_time_s);
    }
    EXPECT_GE(trips[i].pickup_time_s, 0.0);
    EXPECT_LT(trips[i].pickup_time_s, 86400.0);
  }
}

TEST(WorkloadTest, PointsInsideBounds) {
  WorkloadOptions opt;
  opt.num_trips = 400;
  BoundingBox box = TestBox();
  for (const TaxiTrip& t : GenerateTrips(box, opt)) {
    EXPECT_TRUE(box.Contains(t.pickup));
    EXPECT_TRUE(box.Contains(t.dropoff));
  }
}

TEST(WorkloadTest, RespectsMinTripLengthMostly) {
  WorkloadOptions opt;
  opt.num_trips = 600;
  opt.min_trip_m = 1000.0;
  std::size_t too_short = 0;
  for (const TaxiTrip& t : GenerateTrips(TestBox(), opt)) {
    if (HaversineMeters(t.pickup, t.dropoff) < opt.min_trip_m) ++too_short;
  }
  // Resampling is capped at 64 attempts, so a tiny residue is tolerated.
  EXPECT_LT(too_short, 10u);
}

TEST(WorkloadTest, DeterministicPerSeedAndDistinctAcrossSeeds) {
  WorkloadOptions opt;
  opt.num_trips = 100;
  opt.seed = 5;
  std::vector<TaxiTrip> a = GenerateTrips(TestBox(), opt);
  std::vector<TaxiTrip> b = GenerateTrips(TestBox(), opt);
  opt.seed = 6;
  std::vector<TaxiTrip> c = GenerateTrips(TestBox(), opt);
  bool same_ab = true, same_ac = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same_ab &= a[i].pickup == b[i].pickup &&
               a[i].pickup_time_s == b[i].pickup_time_s;
    same_ac &= a[i].pickup == c[i].pickup &&
               a[i].pickup_time_s == c[i].pickup_time_s;
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(WorkloadTest, HourlyProfileNormalized) {
  const double* profile = HourlyArrivalProfile();
  double sum = 0;
  for (int h = 0; h < 24; ++h) {
    EXPECT_GT(profile[h], 0.0);
    sum += profile[h];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Rush hours beat the overnight trough.
  EXPECT_GT(profile[8], profile[3]);
  EXPECT_GT(profile[18], profile[3]);
}

TEST(WorkloadTest, TemporalShapeFollowsProfile) {
  WorkloadOptions opt;
  opt.num_trips = 20000;
  std::vector<TaxiTrip> trips = GenerateTrips(TestBox(), opt);
  std::size_t overnight = 0, evening = 0;
  for (const TaxiTrip& t : trips) {
    int hour = static_cast<int>(t.pickup_time_s / 3600.0);
    if (hour >= 2 && hour < 5) ++overnight;
    if (hour >= 17 && hour < 20) ++evening;
  }
  EXPECT_GT(evening, overnight * 4);
}

TEST(WorkloadTest, SpatialHotspotSkew) {
  WorkloadOptions opt;
  opt.num_trips = 5000;
  BoundingBox box = TestBox();
  std::vector<TaxiTrip> trips = GenerateTrips(box, opt);
  // Pickups concentrate near hotspots: the mean distance to the box center
  // must be well below the uniform-expectation.
  double mean_dist = 0;
  for (const TaxiTrip& t : trips) {
    mean_dist += HaversineMeters(t.pickup, box.Center());
  }
  mean_dist /= static_cast<double>(trips.size());
  double half_diag =
      std::max(box.WidthMeters(), box.HeightMeters()) / 2;
  EXPECT_LT(mean_dist, half_diag * 0.75);
}

TEST(WorkloadTest, FilterByTimeWindow) {
  WorkloadOptions opt;
  opt.num_trips = 2000;
  std::vector<TaxiTrip> trips = GenerateTrips(TestBox(), opt);
  std::vector<TaxiTrip> morning =
      FilterByTimeWindow(trips, 6 * 3600.0, 12 * 3600.0);
  EXPECT_GT(morning.size(), 0u);
  EXPECT_LT(morning.size(), trips.size());
  for (const TaxiTrip& t : morning) {
    EXPECT_GE(t.pickup_time_s, 6 * 3600.0);
    EXPECT_LT(t.pickup_time_s, 12 * 3600.0);
  }
  // Filtering is exact: count matches a manual scan.
  std::size_t manual = 0;
  for (const TaxiTrip& t : trips) {
    if (t.pickup_time_s >= 6 * 3600.0 && t.pickup_time_s < 12 * 3600.0)
      ++manual;
  }
  EXPECT_EQ(morning.size(), manual);
}

}  // namespace
}  // namespace xar
