#include "xar/xar_system.h"

#include <gtest/gtest.h>

#include "tests/test_helpers.h"
#include "xar/ride.h"

namespace xar {
namespace {

using testing::SharedCity;
using testing::TestCity;

class XarSystemTest : public ::testing::Test {
 protected:
  XarSystemTest()
      : city_(SharedCity()),
        xar_(city_.graph, *city_.spatial, *city_.region, *city_.oracle) {}

  /// An offer crossing the city diagonally, departing at `t`.
  RideOffer DiagonalOffer(double t = 8 * 3600.0) const {
    const BoundingBox& b = city_.graph.bounds();
    RideOffer offer;
    offer.source = {b.min_lat + 0.1 * (b.max_lat - b.min_lat),
                    b.min_lng + 0.1 * (b.max_lng - b.min_lng)};
    offer.destination = {b.min_lat + 0.9 * (b.max_lat - b.min_lat),
                         b.min_lng + 0.9 * (b.max_lng - b.min_lng)};
    offer.departure_time_s = t;
    return offer;
  }

  /// A request along the middle of the diagonal, compatible with the offer.
  RideRequest MidRequest(double t = 8 * 3600.0) const {
    const BoundingBox& b = city_.graph.bounds();
    RideRequest req;
    req.id = RequestId(1);
    req.source = {b.min_lat + 0.35 * (b.max_lat - b.min_lat),
                  b.min_lng + 0.35 * (b.max_lng - b.min_lng)};
    req.destination = {b.min_lat + 0.7 * (b.max_lat - b.min_lat),
                       b.min_lng + 0.7 * (b.max_lng - b.min_lng)};
    req.earliest_departure_s = t;
    req.latest_departure_s = t + 1800;
    return req;
  }

  TestCity& city_;
  XarSystem xar_;
};

TEST_F(XarSystemTest, CreateRideRegistersClusters) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok()) << ride.status().ToString();
  const Ride* r = xar_.GetRide(*ride);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->active);
  EXPECT_EQ(r->via_points.size(), 2u);
  EXPECT_GT(r->route.nodes.size(), 2u);
  const RideRegistration* reg = xar_.ride_index().RegistrationOf(*ride);
  ASSERT_NE(reg, nullptr);
  EXPECT_FALSE(reg->pass_throughs.empty());
  EXPECT_FALSE(reg->registered_clusters.empty());
}

TEST_F(XarSystemTest, SearchFindsCompatibleRide) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok());
  std::vector<RideMatch> matches = xar_.Search(MidRequest());
  ASSERT_FALSE(matches.empty());
  bool found = false;
  for (const RideMatch& m : matches) {
    if (m.ride == *ride) found = true;
    EXPECT_LE(m.TotalWalkM(), xar_.options().default_walk_limit_m);
    EXPECT_LE(m.eta_source_s, m.eta_dest_s);
  }
  EXPECT_TRUE(found);
}

TEST_F(XarSystemTest, SearchRespectsWalkLimit) {
  ASSERT_TRUE(xar_.CreateRide(DiagonalOffer()).ok());
  RideRequest req = MidRequest();
  req.walk_limit_m = 1.0;  // nothing is within a meter of a landmark
  EXPECT_TRUE(xar_.Search(req).empty());
}

TEST_F(XarSystemTest, SearchRespectsTimeWindow) {
  ASSERT_TRUE(xar_.CreateRide(DiagonalOffer(8 * 3600.0)).ok());
  RideRequest req = MidRequest(20 * 3600.0);  // 12 hours later
  EXPECT_TRUE(xar_.Search(req).empty());
}

TEST_F(XarSystemTest, BookInsertsViaPointsAndChargesDetour) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok());
  RideRequest req = MidRequest();
  std::vector<RideMatch> matches = xar_.Search(req);
  ASSERT_FALSE(matches.empty());

  double route_before = xar_.GetRide(*ride)->route.length_m;
  Result<BookingRecord> booking = xar_.Book(matches[0].ride, req, matches[0]);
  ASSERT_TRUE(booking.ok()) << booking.status().ToString();

  const Ride* r = xar_.GetRide(*ride);
  EXPECT_EQ(r->via_points.size(), 4u);  // src, pickup, dropoff, dst
  EXPECT_EQ(r->seats_available, r->seats_total - 1);
  EXPECT_GE(r->route.length_m, route_before);
  EXPECT_NEAR(r->detour_used_m, booking->actual_detour_m, 1e-6);
  EXPECT_LE(booking->shortest_path_computations, 4u);
  EXPECT_LE(booking->pickup_eta_s, booking->dropoff_eta_s);

  // Via-point order along the route must be monotone.
  for (std::size_t i = 0; i + 1 < r->via_route_index.size(); ++i) {
    EXPECT_LE(r->via_route_index[i], r->via_route_index[i + 1]);
  }
  // Via route indexes point at the right nodes.
  for (std::size_t i = 0; i < r->via_points.size(); ++i) {
    EXPECT_EQ(r->route.nodes[r->via_route_index[i]], r->via_points[i].node);
  }
}

TEST_F(XarSystemTest, BookingDetourWithinGuarantee) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer());
  ASSERT_TRUE(ride.ok());
  RideRequest req = MidRequest();
  std::vector<RideMatch> matches = xar_.Search(req);
  ASSERT_FALSE(matches.empty());
  Result<BookingRecord> booking = xar_.Book(matches[0].ride, req, matches[0]);
  ASSERT_TRUE(booking.ok());
  // Theorem 6 / Section V: actual detour exceeds the cluster estimate by at
  // most 4 * epsilon.
  double bound = matches[0].detour_estimate_m + 4 * city_.region->epsilon();
  EXPECT_LE(booking->actual_detour_m, bound + 1e-6);
}

TEST_F(XarSystemTest, SeatsExhaustRejectsFurtherBookings) {
  RideOffer offer = DiagonalOffer();
  offer.seats = 1;
  Result<RideId> ride = xar_.CreateRide(offer);
  ASSERT_TRUE(ride.ok());
  RideRequest req = MidRequest();
  std::vector<RideMatch> matches = xar_.Search(req);
  ASSERT_FALSE(matches.empty());
  ASSERT_TRUE(xar_.Book(matches[0].ride, req, matches[0]).ok());

  // The ride is full: search must not return it any more.
  RideRequest req2 = MidRequest();
  req2.id = RequestId(2);
  for (const RideMatch& m : xar_.Search(req2)) {
    EXPECT_NE(m.ride, *ride);
  }
}

TEST_F(XarSystemTest, TrackingEvictsPassedClusters) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer(8 * 3600.0));
  ASSERT_TRUE(ride.ok());
  const Ride* r = xar_.GetRide(*ride);
  double halfway = r->departure_time_s + r->route.time_s * 0.5;

  std::size_t before =
      xar_.ride_index().RegistrationOf(*ride)->pass_throughs.size();
  xar_.AdvanceTime(halfway);
  const RideRegistration* reg = xar_.ride_index().RegistrationOf(*ride);
  ASSERT_NE(reg, nullptr);
  EXPECT_LT(reg->pass_throughs.size(), before);
  // All remaining pass-throughs lie in the future.
  for (const PassThroughCluster& pt : reg->pass_throughs) {
    EXPECT_GE(pt.eta_s, halfway);
  }
}

TEST_F(XarSystemTest, RideFinishesAfterArrival) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer(8 * 3600.0));
  ASSERT_TRUE(ride.ok());
  double arrival = xar_.GetRide(*ride)->ArrivalTimeS();
  xar_.AdvanceTime(arrival + 1.0);
  EXPECT_FALSE(xar_.GetRide(*ride)->active);
  EXPECT_EQ(xar_.ride_index().RegistrationOf(*ride), nullptr);
  EXPECT_EQ(xar_.NumActiveRides(), 0u);
}

TEST_F(XarSystemTest, SearchAfterTrackingDoesNotReturnPassedRides) {
  Result<RideId> ride = xar_.CreateRide(DiagonalOffer(8 * 3600.0));
  ASSERT_TRUE(ride.ok());
  // Move time to just before arrival: the early-route clusters are passed.
  const Ride* r = xar_.GetRide(*ride);
  double late = r->departure_time_s + r->route.time_s * 0.95;
  xar_.AdvanceTime(late);

  // A request near the start of the route must not match any more.
  RideRequest req = MidRequest(8 * 3600.0);
  const BoundingBox& b = city_.graph.bounds();
  req.source = {b.min_lat + 0.12 * (b.max_lat - b.min_lat),
                b.min_lng + 0.12 * (b.max_lng - b.min_lng)};
  req.destination = {b.min_lat + 0.3 * (b.max_lat - b.min_lat),
                     b.min_lng + 0.3 * (b.max_lng - b.min_lng)};
  for (const RideMatch& m : xar_.Search(req)) {
    EXPECT_NE(m.ride, *ride);
  }
}

TEST_F(XarSystemTest, UnreachableOfferRejected) {
  RideOffer offer;
  offer.source = city_.graph.bounds().Center();
  offer.destination = offer.source;
  EXPECT_FALSE(xar_.CreateRide(offer).ok());
}

TEST_F(XarSystemTest, MemoryFootprintGrowsWithRides) {
  std::size_t empty = xar_.MemoryFootprint();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(xar_.CreateRide(DiagonalOffer(8 * 3600.0 + i * 60)).ok());
  }
  EXPECT_GT(xar_.MemoryFootprint(), empty);
}

}  // namespace
}  // namespace xar
